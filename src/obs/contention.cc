#include "obs/contention.h"

#include <algorithm>
#include <fstream>

#include "util/check.h"

namespace ccsim {

ContentionProfiler::ContentionProfiler(size_t capacity)
    : capacity_(capacity) {
  CCSIM_CHECK_GE(capacity, 1u) << "contention sketch needs capacity >= 1";
  entries_.reserve(capacity);
}

void ContentionProfiler::Record(ObjectId obj, BlameKind kind) {
  ++total_conflicts_;
  auto it = entries_.find(obj);
  if (it == entries_.end()) {
    int64_t floor = 0;
    if (entries_.size() >= capacity_) {
      // Space-Saving eviction: drop the minimum-count entry; among equals
      // the largest object id goes first, so the survivor set is a pure
      // function of the event stream.
      auto victim = entries_.begin();
      for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
        if (cand->second.conflicts < victim->second.conflicts ||
            (cand->second.conflicts == victim->second.conflicts &&
             cand->first > victim->first)) {
          victim = cand;
        }
      }
      floor = victim->second.conflicts;
      entries_.erase(victim);
    }
    Entry entry;
    entry.object = obj;
    // The inherited floor is attributed to neither column: blocks+restarts
    // count only *observed* events; `conflicts` carries the overestimate.
    entry.conflicts = floor;
    it = entries_.emplace(obj, entry).first;
  }
  ++it->second.conflicts;
  if (kind == BlameKind::kBlock) {
    ++it->second.blocks;
  } else {
    ++it->second.restarts;
  }
}

void ContentionProfiler::Reset() {
  total_conflicts_ = 0;
  entries_.clear();
}

std::vector<ContentionProfiler::Entry> ContentionProfiler::TopK(
    size_t k) const {
  std::vector<Entry> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [obj, entry] : entries_) sorted.push_back(entry);
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.conflicts != b.conflicts) return a.conflicts > b.conflicts;
    return a.object < b.object;
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

bool ContentionProfiler::WriteCsv(const std::string& path, size_t k) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  out << "object,conflicts,blocks,restarts\n";
  for (const Entry& entry : TopK(k)) {
    out << entry.object << ',' << entry.conflicts << ',' << entry.blocks
        << ',' << entry.restarts << '\n';
  }
  out.flush();
  return out.good();
}

}  // namespace ccsim
