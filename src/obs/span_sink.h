// Resource-model observability hooks.
//
// The resource layer (res/) sits below obs in the dependency order for its
// implementation, but the *interface* it reports into lives here so that
// obs can also sit below res. A ServerPool with a sink attached reports
// every service span (at service start, when the duration is already known
// — service times are drawn before scheduling) and every queue-depth change.
// With no sink attached the cost is one null check per event.
#ifndef CCSIM_OBS_SPAN_SINK_H_
#define CCSIM_OBS_SPAN_SINK_H_

#include <string>

#include "sim/time.h"

namespace ccsim {

class ServiceSpanSink {
 public:
  virtual ~ServiceSpanSink() = default;

  /// Announces a server track (one per pool: "cpu", "disk0", ..., "log").
  /// The returned id is passed back in the per-event calls.
  virtual int RegisterTrack(const std::string& name) = 0;

  /// One server of `track` serves a request during [start, start+duration).
  virtual void OnServiceSpan(int track, SimTime start, SimTime duration) = 0;

  /// The wait queue of `track` changed length at `now`.
  virtual void OnQueueDepth(int track, SimTime now, int depth) = 0;
};

}  // namespace ccsim

#endif  // CCSIM_OBS_SPAN_SINK_H_
