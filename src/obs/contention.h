// Hot-granule contention accounting (docs/OBSERVABILITY.md).
//
// Tracks per-object conflict / block / restart counts in a space-capped
// Space-Saving sketch: at most `capacity` objects are tracked at once, and
// when a new object arrives at a full sketch it evicts the entry with the
// smallest conflict count (deterministic tie-break: the larger object id is
// evicted first), inheriting that count as its overestimate floor — the
// classical top-K guarantee that true heavy hitters are never lost. Memory
// is O(capacity) regardless of db_size.
//
// The profiler is fed from the engine's on_blame hook, so it sees exactly
// the conflicts the blame layer attributes, keyed on simulated time only —
// same-seed runs produce byte-identical hot CSVs.
#ifndef CCSIM_OBS_CONTENTION_H_
#define CCSIM_OBS_CONTENTION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/types.h"

namespace ccsim {

class ContentionProfiler {
 public:
  /// `capacity` bounds the tracked-object set (>= 1).
  explicit ContentionProfiler(size_t capacity);

  /// Books one conflict on `obj`: kBlock counts as a block, every other
  /// BlameKind as a restart-causing conflict.
  void Record(ObjectId obj, BlameKind kind);

  /// Clears all counts (measurement reset).
  void Reset();

  struct Entry {
    ObjectId object = 0;
    int64_t conflicts = 0;  ///< blocks + restarts (the eviction key).
    int64_t blocks = 0;
    int64_t restarts = 0;
  };

  /// The hottest `k` objects: conflicts descending, ties broken by
  /// ascending object id. Deterministic for a fixed event stream.
  std::vector<Entry> TopK(size_t k) const;

  /// Writes the top-`k` table as CSV (header: object,conflicts,blocks,
  /// restarts). Returns stream health.
  bool WriteCsv(const std::string& path, size_t k) const;

  int64_t total_conflicts() const { return total_conflicts_; }
  size_t tracked_objects() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  int64_t total_conflicts_ = 0;
  std::unordered_map<ObjectId, Entry> entries_;
};

}  // namespace ccsim

#endif  // CCSIM_OBS_CONTENTION_H_
