// Transaction lifecycle tracing.
//
// When a sink is attached, the engine emits one record per lifecycle event:
// submission, activation, block, resume, internal think, restart, commit.
// Traces serve debugging (StreamTraceSink renders a readable log) and
// testing (MemoryTraceSink lets tests assert that every transaction's event
// sequence is well-formed). Tracing is off by default and costs one null
// check per event when disabled.
#ifndef CCSIM_OBS_TRACE_H_
#define CCSIM_OBS_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "cc/types.h"
#include "sim/time.h"

namespace ccsim {

enum class TxnEvent {
  kSubmitted,      ///< Entered the ready queue (new transaction).
  kActivated,      ///< Admitted under the mpl; incarnation begins.
  kBlocked,        ///< A cc request put it to sleep.
  kResumed,        ///< A blocked request was woken for retry.
  kInternalThink,  ///< Began its intra-transaction think.
  kRestarted,      ///< Incarnation aborted; will re-enter the ready queue.
  kCommitted,      ///< Finished.
};

/// Stable display name for an event.
const char* TxnEventName(TxnEvent event);

struct TraceRecord {
  SimTime time = 0;
  TxnId txn = kInvalidTxn;
  int incarnation = 0;
  TxnEvent event = TxnEvent::kSubmitted;
};

/// Receives every lifecycle record.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Record(const TraceRecord& record) = 0;
};

/// Collects records in memory (tests, post-hoc analysis).
class MemoryTraceSink : public TraceSink {
 public:
  void Record(const TraceRecord& record) override {
    records_.push_back(record);
  }
  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  std::vector<TraceRecord> records_;
};

/// Formats records as text lines, one per event.
class StreamTraceSink : public TraceSink {
 public:
  explicit StreamTraceSink(std::ostream* out) : out_(out) {}
  void Record(const TraceRecord& record) override;

 private:
  std::ostream* out_;
};

/// Result of validating a trace's per-transaction event grammar:
///   Submitted Activated (Blocked Resumed* | InternalThink | Restarted
///   Activated)* Committed?
/// plus: incarnations increase by exactly 1 per Activated, Restarted is
/// always followed by another Activated or nothing (end of run), and
/// Committed is terminal.
struct TraceValidation {
  bool ok = true;
  std::string error;  ///< First violation found.
};

TraceValidation ValidateTrace(const std::vector<TraceRecord>& records);

}  // namespace ccsim

#endif  // CCSIM_OBS_TRACE_H_
