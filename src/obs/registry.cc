#include "obs/registry.h"

#include "util/check.h"

namespace ccsim {

void StatsRegistry::AddInstrument(const std::string& name,
                                  std::function<double()> read) {
  for (const Instrument& instrument : instruments_) {
    CCSIM_CHECK(instrument.name != name)
        << "duplicate observability instrument \"" << name << "\"";
  }
  instruments_.push_back(Instrument{name, std::move(read)});
}

ObsCounter* StatsRegistry::AddCounter(const std::string& name) {
  counters_.emplace_back();
  ObsCounter* counter = &counters_.back();
  AddInstrument(name,
                [counter] { return static_cast<double>(counter->value); });
  return counter;
}

void StatsRegistry::AddGauge(const std::string& name,
                             std::function<double()> read) {
  AddInstrument(name, std::move(read));
}

Histogram* StatsRegistry::AddHistogram(const std::string& name, double lo,
                                       double hi, int bins) {
  histograms_.emplace_back(lo, hi, bins);
  Histogram* histogram = &histograms_.back();
  AddInstrument(name + "_count", [histogram] {
    return static_cast<double>(histogram->total());
  });
  AddInstrument(name + "_p50", [histogram] {
    return histogram->total() > 0 ? histogram->Quantile(0.5) : 0.0;
  });
  return histogram;
}

std::vector<std::string> StatsRegistry::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(instruments_.size());
  for (const Instrument& instrument : instruments_) {
    names.push_back(instrument.name);
  }
  return names;
}

void StatsRegistry::SampleRow(std::vector<double>* out) const {
  for (const Instrument& instrument : instruments_) {
    out->push_back(instrument.read());
  }
}

double StatsRegistry::ValueOf(const std::string& name) const {
  for (const Instrument& instrument : instruments_) {
    if (instrument.name == name) return instrument.read();
  }
  CCSIM_CHECK(false) << "unknown observability instrument \"" << name << "\"";
  return 0.0;
}

}  // namespace ccsim
