#include "obs/blame.h"

#include <algorithm>

namespace ccsim {

void BlameLedger::ChargeWasted(TxnId aborter, int64_t us) {
  if (aborter == kInvalidTxn) return;
  wasted_attributed_us_ += us;
  ++restarts_charged_;
  wasted_by_aborter_[aborter] += us;
}

void BlameLedger::ChargeBlocked(TxnId holder, int64_t us) {
  if (holder == kInvalidTxn) return;
  blocked_attributed_us_ += us;
  ++blocks_charged_;
  blocked_by_holder_[holder] += us;
}

void BlameLedger::AddGenealogy(int64_t incarnations) {
  genealogy_sum_ += incarnations;
  genealogy_max_ = std::max(genealogy_max_, incarnations);
  ++genealogy_count_;
}

void BlameLedger::Reset() {
  wasted_attributed_us_ = 0;
  blocked_attributed_us_ = 0;
  restarts_charged_ = 0;
  blocks_charged_ = 0;
  genealogy_sum_ = 0;
  genealogy_max_ = 0;
  genealogy_count_ = 0;
  wasted_by_aborter_.clear();
  blocked_by_holder_.clear();
}

namespace {

/// Largest charge wins; ties break toward the smaller txn id so the report
/// is a deterministic function of the run.
void PickTop(const std::unordered_map<TxnId, int64_t>& charges, TxnId* who,
             int64_t* amount) {
  *who = kInvalidTxn;
  *amount = 0;
  for (const auto& [txn, charged] : charges) {
    if (charged > *amount || (charged == *amount && *who != kInvalidTxn &&
                              txn < *who)) {
      *who = txn;
      *amount = charged;
    }
  }
}

}  // namespace

BlameBreakdown BlameLedger::Finish(int64_t wasted_total_us,
                                   int64_t blocked_total_us) const {
  BlameBreakdown b;
  b.collected = true;
  b.wasted_us = wasted_total_us;
  b.blocked_us = blocked_total_us;
  b.wasted_attributed_us = wasted_attributed_us_;
  b.wasted_unattributed_us = wasted_total_us - wasted_attributed_us_;
  b.blocked_attributed_us = blocked_attributed_us_;
  b.blocked_unattributed_us = blocked_total_us - blocked_attributed_us_;
  b.restarts_charged = restarts_charged_;
  b.blocks_charged = blocks_charged_;
  b.genealogy_max = genealogy_max_;
  b.genealogy_mean =
      genealogy_count_ > 0
          ? static_cast<double>(genealogy_sum_) / genealogy_count_
          : 0.0;
  PickTop(wasted_by_aborter_, &b.top_aborter, &b.top_aborter_wasted_us);
  PickTop(blocked_by_holder_, &b.top_holder, &b.top_holder_blocked_us);
  return b;
}

}  // namespace ccsim
