#include "res/resources.h"

#include <utility>

#include "util/check.h"
#include "util/str.h"

namespace ccsim {

ResourceManager::ResourceManager(Simulator* sim, const ResourceConfig& config,
                                 Rng disk_rng)
    : sim_(sim), config_(config), disk_rng_(std::move(disk_rng)) {
  if (config_.infinite) {
    cpu_ = std::make_unique<ServerPool>(sim_, 0, /*infinite=*/true, "cpu");
    // One infinite pool stands in for the whole disk farm: with no queuing
    // the partitioning is unobservable.
    disks_.push_back(
        std::make_unique<ServerPool>(sim_, 0, /*infinite=*/true, "disk"));
  } else {
    CCSIM_CHECK_GE(config_.num_cpus, 1);
    CCSIM_CHECK_GE(config_.num_disks, 1);
    cpu_ = std::make_unique<ServerPool>(sim_, config_.num_cpus,
                                        /*infinite=*/false, "cpu");
    for (int i = 0; i < config_.num_disks; ++i) {
      disks_.push_back(std::make_unique<ServerPool>(
          sim_, 1, /*infinite=*/false, StringPrintf("disk%d", i)));
    }
  }
  // Arm the simulated fault windows last, so the drain events they schedule
  // exist regardless of the finite/infinite topology above. One disk_fault
  // window covers the whole array: the scenario is "the controller stalls",
  // not "one platter does".
  if (config_.cpu_fault.enabled()) cpu_->SetFaultWindow(config_.cpu_fault);
  if (config_.disk_fault.enabled()) {
    for (auto& disk : disks_) disk->SetFaultWindow(config_.disk_fault);
  }
}

void ResourceManager::RequestCpu(SimTime service_time, ServicePriority priority,
                                 ServiceCompletion done) {
  cpu_->Request(service_time, priority, std::move(done));
}

void ResourceManager::RequestDisk(SimTime service_time, ServiceCompletion done) {
  int disk = disks_.size() == 1
                 ? 0
                 : static_cast<int>(disk_rng_.UniformInt(
                       0, static_cast<int64_t>(disks_.size()) - 1));
  RequestDiskAt(disk, service_time, std::move(done));
}

void ResourceManager::RequestDiskAt(int disk, SimTime service_time,
                                    ServiceCompletion done) {
  CCSIM_CHECK_GE(disk, 0);
  CCSIM_CHECK_LT(disk, num_disks());
  disks_[static_cast<size_t>(disk)]->Request(
      service_time, ServicePriority::kNormal, std::move(done));
}

void ResourceManager::RequestLog(SimTime service_time, ServiceCompletion done) {
  if (log_ == nullptr) {
    log_ = std::make_unique<ServerPool>(sim_, 1, config_.infinite, "log");
    if (span_sink_ != nullptr) log_->AttachSpanSink(span_sink_);
  }
  log_->Request(service_time, ServicePriority::kNormal, std::move(done));
}

double ResourceManager::LogUtilization(SimTime now) {
  return log_ == nullptr ? 0.0 : log_->Utilization(now);
}

double ResourceManager::CpuUtilization(SimTime now) {
  return cpu_->Utilization(now);
}

double ResourceManager::DiskUtilization(SimTime now) {
  if (config_.infinite) return 0.0;
  double sum = 0.0;
  for (auto& disk : disks_) {
    sum += disk->Utilization(now);
  }
  return sum / static_cast<double>(disks_.size());
}

void ResourceManager::ResetWindow(SimTime now) {
  cpu_->ResetWindow(now);
  for (auto& disk : disks_) {
    disk->ResetWindow(now);
  }
  if (log_ != nullptr) log_->ResetWindow(now);
}

int64_t ResourceManager::faulted_requests() const {
  int64_t total = cpu_->faulted_requests();
  for (const auto& disk : disks_) total += disk->faulted_requests();
  return total;
}

SimTime ResourceManager::fault_delay() const {
  SimTime total = cpu_->fault_delay();
  for (const auto& disk : disks_) total += disk->fault_delay();
  return total;
}

void ResourceManager::RegisterStats(StatsRegistry* registry) {
  auto add_pool = [registry](const std::string& name, const ServerPool* pool) {
    registry->AddGauge(name + "_busy", [pool] {
      return static_cast<double>(pool->busy_servers());
    });
    registry->AddGauge(name + "_q", [pool] {
      return static_cast<double>(pool->queue_length());
    });
    // Fault-window exposure only when armed, so an unfaulted run's gauge
    // set — and therefore its sampler CSV header — is byte-identical to
    // builds without the fault subsystem.
    if (pool->fault_window().enabled()) {
      registry->AddGauge(name + "_faulted", [pool] {
        return static_cast<double>(pool->faulted_requests());
      });
    }
  };
  add_pool("cpu", cpu_.get());
  for (auto& disk : disks_) add_pool(disk->name(), disk.get());
  // The log pool is created lazily on first use; read through the owner.
  registry->AddGauge("log_busy", [this] {
    return log_ == nullptr ? 0.0 : static_cast<double>(log_->busy_servers());
  });
  registry->AddGauge("log_q", [this] {
    return log_ == nullptr ? 0.0 : static_cast<double>(log_->queue_length());
  });
}

void ResourceManager::AttachSpanSink(ServiceSpanSink* sink) {
  span_sink_ = sink;
  cpu_->AttachSpanSink(sink);
  for (auto& disk : disks_) disk->AttachSpanSink(sink);
  if (log_ != nullptr) log_->AttachSpanSink(sink);
}

}  // namespace ccsim
