#include "res/server_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ccsim {

ServerPool::ServerPool(Simulator* sim, int num_servers, bool infinite,
                       std::string name)
    : sim_(sim),
      num_servers_(infinite ? 0 : num_servers),
      infinite_(infinite),
      name_(std::move(name)),
      busy_time_(sim->Now()),
      queue_len_(sim->Now()) {
  CCSIM_CHECK(infinite || num_servers >= 1)
      << "finite pool " << name_ << " needs at least one server";
}

void ServerPool::Request(SimTime service_time, ServicePriority priority,
                         ServiceCompletion done) {
  CCSIM_CHECK_GT(service_time, 0) << "zero-cost service in pool " << name_;
  Pending pending{service_time, sim_->Now(), std::move(done)};
  // Inside a fault window nothing starts: the request queues even with idle
  // servers (infinite pools included — their only queue use), and the drain
  // event at the window end picks it up. Deferral time is attributed to
  // fault_delay() at drain.
  if (fault_.active(sim_->Now())) {
    ++faulted_requests_;
    auto& fq = priority == ServicePriority::kConcurrencyControl
                   ? cc_queue_
                   : normal_queue_;
    fq.push_back(std::move(pending));
    queue_len_.Set(sim_->Now(), static_cast<double>(queue_length()));
    if (span_sink_ != nullptr) {
      span_sink_->OnQueueDepth(span_track_, sim_->Now(),
                               static_cast<int>(queue_length()));
    }
    return;
  }
  if (infinite_ || busy_servers_ < num_servers_) {
    wait_times_.Add(0.0);
    BeginService(std::move(pending));
    return;
  }
  auto& queue = priority == ServicePriority::kConcurrencyControl ? cc_queue_
                                                                 : normal_queue_;
  queue.push_back(std::move(pending));
  queue_len_.Set(sim_->Now(), static_cast<double>(queue_length()));
  if (span_sink_ != nullptr) {
    span_sink_->OnQueueDepth(span_track_, sim_->Now(),
                             static_cast<int>(queue_length()));
  }
}

void ServerPool::BeginService(Pending pending) {
  ++busy_servers_;
  busy_time_.Set(sim_->Now(), static_cast<double>(busy_servers_));
  SimTime service_time = pending.service_time;
  // Outage hold: a completion that would land inside the window is held to
  // the window end — the server stays busy and the request simply takes
  // longer, modelling in-flight work frozen on a device that dropped off.
  if (fault_.kind == FaultWindowKind::kOutage) {
    const SimTime completes = sim_->Now() + service_time;
    if (completes >= fault_.start && completes < fault_.end) {
      ++faulted_requests_;
      fault_delay_ += fault_.end - completes;
      service_time = fault_.end - sim_->Now();
    }
  }
  if (span_sink_ != nullptr) {
    span_sink_->OnServiceSpan(span_track_, sim_->Now(), service_time);
  }
  ServiceCompletion done = std::move(pending.done);
  sim_->Schedule(service_time,
                 [this, done = std::move(done)]() mutable {
                   OnServiceComplete(std::move(done));
                 });
}

void ServerPool::OnServiceComplete(ServiceCompletion done) {
  --busy_servers_;
  CCSIM_CHECK_GE(busy_servers_, 0);
  busy_time_.Set(sim_->Now(), static_cast<double>(busy_servers_));
  ++completed_requests_;

  // Hand the freed server to the highest-priority waiter before running the
  // completion, so that queue statistics reflect the instant of transfer.
  // During a stall window the freed server idles instead — the drain event
  // at the window end performs the deferred handoffs. (Under an outage no
  // completion can land here: BeginService held them past the window.)
  if (!infinite_ && !fault_.active(sim_->Now())) {
    std::deque<Pending>* queue = nullptr;
    if (!cc_queue_.empty()) {
      queue = &cc_queue_;
    } else if (!normal_queue_.empty()) {
      queue = &normal_queue_;
    }
    if (queue != nullptr) {
      Pending next = std::move(queue->front());
      queue->pop_front();
      queue_len_.Set(sim_->Now(), static_cast<double>(queue_length()));
      if (span_sink_ != nullptr) {
        span_sink_->OnQueueDepth(span_track_, sim_->Now(),
                                 static_cast<int>(queue_length()));
      }
      wait_times_.Add(ToSeconds(sim_->Now() - next.enqueue_time));
      BeginService(std::move(next));
    }
  }
  done();
}

void ServerPool::SetFaultWindow(const FaultWindow& window) {
  CCSIM_CHECK(window.enabled())
      << "SetFaultWindow(kNone) on pool " << name_;
  CCSIM_CHECK(!fault_.enabled())
      << "pool " << name_ << " already has a fault window";
  CCSIM_CHECK_GE(window.start, 0);
  CCSIM_CHECK_GT(window.end, window.start)
      << "empty fault window on pool " << name_;
  CCSIM_CHECK_GE(window.start, sim_->Now())
      << "fault window on pool " << name_ << " starts in the past";
  fault_ = window;
  sim_->Schedule(fault_.end - sim_->Now(), [this] { DrainAfterFaultWindow(); });
}

void ServerPool::DrainAfterFaultWindow() {
  // The window just closed (now == fault_.end, so active() is false): start
  // everything the window made wait, capacity permitting. Waiters that were
  // already queued when the window opened count as faulted here — their
  // wait since the window start is attributable to it; arrivals during the
  // window were counted at Request time.
  while ((infinite_ || busy_servers_ < num_servers_) && queue_length() > 0) {
    std::deque<Pending>* queue =
        !cc_queue_.empty() ? &cc_queue_ : &normal_queue_;
    Pending next = std::move(queue->front());
    queue->pop_front();
    if (next.enqueue_time < fault_.start) ++faulted_requests_;
    fault_delay_ += sim_->Now() - std::max(next.enqueue_time, fault_.start);
    queue_len_.Set(sim_->Now(), static_cast<double>(queue_length()));
    if (span_sink_ != nullptr) {
      span_sink_->OnQueueDepth(span_track_, sim_->Now(),
                               static_cast<int>(queue_length()));
    }
    wait_times_.Add(ToSeconds(sim_->Now() - next.enqueue_time));
    BeginService(std::move(next));
  }
}

void ServerPool::ResetWindow(SimTime now) {
  busy_time_.ResetWindow(now);
  queue_len_.ResetWindow(now);
  wait_times_.Reset();
}

void ServerPool::AttachSpanSink(ServiceSpanSink* sink) {
  span_sink_ = sink;
  span_track_ = sink != nullptr ? sink->RegisterTrack(name_) : -1;
}

}  // namespace ccsim
