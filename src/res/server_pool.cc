#include "res/server_pool.h"

#include <utility>

#include "util/check.h"

namespace ccsim {

ServerPool::ServerPool(Simulator* sim, int num_servers, bool infinite,
                       std::string name)
    : sim_(sim),
      num_servers_(infinite ? 0 : num_servers),
      infinite_(infinite),
      name_(std::move(name)),
      busy_time_(sim->Now()),
      queue_len_(sim->Now()) {
  CCSIM_CHECK(infinite || num_servers >= 1)
      << "finite pool " << name_ << " needs at least one server";
}

void ServerPool::Request(SimTime service_time, ServicePriority priority,
                         ServiceCompletion done) {
  CCSIM_CHECK_GT(service_time, 0) << "zero-cost service in pool " << name_;
  Pending pending{service_time, sim_->Now(), std::move(done)};
  if (infinite_ || busy_servers_ < num_servers_) {
    wait_times_.Add(0.0);
    BeginService(std::move(pending));
    return;
  }
  auto& queue = priority == ServicePriority::kConcurrencyControl ? cc_queue_
                                                                 : normal_queue_;
  queue.push_back(std::move(pending));
  queue_len_.Set(sim_->Now(), static_cast<double>(queue_length()));
  if (span_sink_ != nullptr) {
    span_sink_->OnQueueDepth(span_track_, sim_->Now(),
                             static_cast<int>(queue_length()));
  }
}

void ServerPool::BeginService(Pending pending) {
  ++busy_servers_;
  busy_time_.Set(sim_->Now(), static_cast<double>(busy_servers_));
  if (span_sink_ != nullptr) {
    span_sink_->OnServiceSpan(span_track_, sim_->Now(), pending.service_time);
  }
  ServiceCompletion done = std::move(pending.done);
  sim_->Schedule(pending.service_time,
                 [this, done = std::move(done)]() mutable {
                   OnServiceComplete(std::move(done));
                 });
}

void ServerPool::OnServiceComplete(ServiceCompletion done) {
  --busy_servers_;
  CCSIM_CHECK_GE(busy_servers_, 0);
  busy_time_.Set(sim_->Now(), static_cast<double>(busy_servers_));
  ++completed_requests_;

  // Hand the freed server to the highest-priority waiter before running the
  // completion, so that queue statistics reflect the instant of transfer.
  if (!infinite_) {
    std::deque<Pending>* queue = nullptr;
    if (!cc_queue_.empty()) {
      queue = &cc_queue_;
    } else if (!normal_queue_.empty()) {
      queue = &normal_queue_;
    }
    if (queue != nullptr) {
      Pending next = std::move(queue->front());
      queue->pop_front();
      queue_len_.Set(sim_->Now(), static_cast<double>(queue_length()));
      if (span_sink_ != nullptr) {
        span_sink_->OnQueueDepth(span_track_, sim_->Now(),
                                 static_cast<int>(queue_length()));
      }
      wait_times_.Add(ToSeconds(sim_->Now() - next.enqueue_time));
      BeginService(std::move(next));
    }
  }
  done();
}

void ServerPool::ResetWindow(SimTime now) {
  busy_time_.ResetWindow(now);
  queue_len_.ResetWindow(now);
  wait_times_.Reset();
}

void ServerPool::AttachSpanSink(ServiceSpanSink* sink) {
  span_sink_ = sink;
  span_track_ = sink != nullptr ? sink->RegisterTrack(name_) : -1;
}

}  // namespace ccsim
