// The complete physical model: one CPU pool plus a partitioned disk array
// (one FCFS queue per disk, disk chosen uniformly at random per access), with
// an infinite-resources mode that turns every request into a pure delay.
#ifndef CCSIM_RES_RESOURCES_H_
#define CCSIM_RES_RESOURCES_H_

#include <memory>
#include <vector>

#include "obs/registry.h"
#include "obs/span_sink.h"
#include "res/server_pool.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace ccsim {

/// Physical configuration. `infinite` overrides the counts. The optional
/// fault windows (docs/FAULTS.md, "Fault windows") are simulated-fault
/// scenarios: `disk_fault` arms the same window on every disk in the array
/// (the whole farm behind one controller), `cpu_fault` on the CPU pool.
/// Both fold into the journal point key — a faulted experiment is a
/// different experiment.
struct ResourceConfig {
  bool infinite = false;
  int num_cpus = 1;
  int num_disks = 2;
  FaultWindow disk_fault;
  FaultWindow cpu_fault;

  static ResourceConfig Infinite() {
    return ResourceConfig{true, 0, 0, {}, {}};
  }
  static ResourceConfig Finite(int cpus, int disks) {
    return ResourceConfig{false, cpus, disks, {}, {}};
  }
};

/// Owns the CPU pool and disk array and routes service requests.
class ResourceManager {
 public:
  /// `disk_rng` drives the uniform random disk choice.
  ResourceManager(Simulator* sim, const ResourceConfig& config, Rng disk_rng);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  const ResourceConfig& config() const { return config_; }

  /// CPU service; cc requests are prioritized over normal work.
  void RequestCpu(SimTime service_time, ServicePriority priority,
                  ServiceCompletion done);

  /// Disk service at a uniformly random disk (the partitioned-database
  /// assumption: each access is equally likely to hit any partition).
  void RequestDisk(SimTime service_time, ServiceCompletion done);

  /// Disk service at a specific disk (tests and specialized workloads).
  void RequestDiskAt(int disk, SimTime service_time, ServiceCompletion done);

  /// Service on the dedicated sequential log disk (commit records). The log
  /// disk is created on first use — one FCFS server, or a pure delay under
  /// infinite resources — and is not counted in DiskUtilization().
  void RequestLog(SimTime service_time, ServiceCompletion done);

  /// Log-disk utilization over the current window (0 if the log disk was
  /// never used or resources are infinite).
  double LogUtilization(SimTime now);

  /// The log pool, or nullptr if never used (tests).
  ServerPool* log_disk() { return log_.get(); }

  int num_disks() const { return static_cast<int>(disks_.size()); }

  ServerPool& cpu() { return *cpu_; }
  ServerPool& disk(int i) { return *disks_[static_cast<size_t>(i)]; }

  /// CPU utilization fraction over the current window (0 if infinite).
  double CpuUtilization(SimTime now);

  /// Mean utilization fraction across all disks over the current window
  /// (0 if infinite).
  double DiskUtilization(SimTime now);

  /// Starts a new measurement window on every pool.
  void ResetWindow(SimTime now);

  /// Requests delayed by fault windows so far, summed across every pool,
  /// and the total injected delay in simulated µs (docs/FAULTS.md).
  int64_t faulted_requests() const;
  SimTime fault_delay() const;

  /// Registers per-pool gauges (busy servers, queue depth, and — when a
  /// fault window is armed — requests the window has delayed) into the
  /// observability registry. The log pool may not exist yet; its gauges read
  /// 0 until first use.
  void RegisterStats(StatsRegistry* registry);

  /// Attaches an observability span sink to every pool (nullptr detaches);
  /// a log pool created later attaches on creation.
  void AttachSpanSink(ServiceSpanSink* sink);

 private:
  Simulator* sim_;
  ResourceConfig config_;
  Rng disk_rng_;
  std::unique_ptr<ServerPool> cpu_;
  std::vector<std::unique_ptr<ServerPool>> disks_;
  std::unique_ptr<ServerPool> log_;
  ServiceSpanSink* span_sink_ = nullptr;
};

}  // namespace ccsim

#endif  // CCSIM_RES_RESOURCES_H_
