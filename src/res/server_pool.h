// Physical resource servers (Figure 2 of the paper).
//
// A ServerPool models k identical servers fed by one global queue with two
// priority classes (concurrency control requests are served before normal
// work, FCFS within class) — this is the paper's CPU model. A pool with one
// server is the building block of the partitioned-disk model. A pool may be
// configured as *infinite*, in which case every request is a pure service
// delay with no queuing — the paper's "infinite resources" assumption.
#ifndef CCSIM_RES_SERVER_POOL_H_
#define CCSIM_RES_SERVER_POOL_H_

#include <deque>
#include <string>

#include "obs/span_sink.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "stats/time_weighted.h"
#include "stats/welford.h"
#include "util/small_fn.h"

namespace ccsim {

/// Service priority classes. Lower enumerator = served first.
enum class ServicePriority { kConcurrencyControl = 0, kNormal = 1 };

/// Simulated resource-fault scenarios (docs/FAULTS.md, "Fault windows"):
/// first-class workloads for studying graceful degradation, not injected
/// errors — the pool stays consistent and every request eventually
/// completes, later.
enum class FaultWindowKind : uint8_t {
  kNone = 0,
  /// Stall: during the window no *new* service starts — arrivals queue even
  /// with idle servers, and freed servers sit idle — but in-flight requests
  /// complete normally. Models a controller pausing its queue (firmware
  /// hiccup, SSD garbage-collection stall).
  kStall,
  /// Outage: a stall whose in-flight requests also freeze — any completion
  /// that would land inside the window is held until the window ends.
  /// Models the device dropping off the bus and coming back.
  kOutage,
};

/// One [start, end) window of simulated time during which the fault holds.
struct FaultWindow {
  FaultWindowKind kind = FaultWindowKind::kNone;
  SimTime start = 0;
  SimTime end = 0;

  bool enabled() const { return kind != FaultWindowKind::kNone; }
  bool active(SimTime now) const {
    return enabled() && now >= start && now < end;
  }
};

/// Completion callback invoked when a service request finishes. Inline
/// small-buffer storage (no heap) for the engine's completion captures —
/// [this, id, incarnation, cost, req_at] is 40 bytes; see
/// sim/simulator.h EventCallback for how pool completions nest inside
/// scheduled events without overflowing either buffer.
using ServiceCompletion = SmallFn<48>;

/// k identical servers with a shared two-class FCFS queue, or an infinite
/// server bank when constructed with `infinite = true`.
class ServerPool {
 public:
  /// `num_servers` is ignored when `infinite` is true. Requires
  /// num_servers >= 1 otherwise.
  ServerPool(Simulator* sim, int num_servers, bool infinite,
             std::string name = "pool");

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  /// Requests `service_time` µs of service; `done` fires at completion.
  /// Requires service_time > 0 (zero-cost steps are the caller's business).
  void Request(SimTime service_time, ServicePriority priority,
               ServiceCompletion done);

  /// Arms one simulated fault window (docs/FAULTS.md). Must be called
  /// before the simulation advances into the window; requires
  /// 0 <= start < end and at most one window per pool. Schedules the
  /// deterministic drain event at `window.end`, so arming a window is
  /// itself part of the simulated workload (an unarmed pool's event
  /// sequence is untouched).
  void SetFaultWindow(const FaultWindow& window);

  const FaultWindow& fault_window() const { return fault_; }

  /// Requests delayed by the fault window so far (start deferred into the
  /// queue, or — outage — completion held to the window end).
  int64_t faulted_requests() const { return faulted_requests_; }

  /// Total extra delay the window injected, in simulated µs, summed over
  /// faulted requests (queue-deferral time plus held-completion time).
  SimTime fault_delay() const { return fault_delay_; }

  bool infinite() const { return infinite_; }
  int num_servers() const { return num_servers_; }
  const std::string& name() const { return name_; }

  /// Servers currently serving a request.
  int busy_servers() const { return busy_servers_; }

  /// Requests waiting in queue (all classes).
  size_t queue_length() const {
    return cc_queue_.size() + normal_queue_.size();
  }

  int64_t completed_requests() const { return completed_requests_; }

  /// Mean busy servers over the current measurement window. Divide by
  /// num_servers() for a utilization fraction (finite pools only).
  double MeanBusyServers(SimTime now) { return busy_time_.Average(now); }

  /// Utilization fraction in the current window; 0 for infinite pools where
  /// the notion is meaningless.
  double Utilization(SimTime now) {
    return infinite_ ? 0.0
                     : MeanBusyServers(now) / static_cast<double>(num_servers_);
  }

  /// Mean queue length over the current window.
  double MeanQueueLength(SimTime now) { return queue_len_.Average(now); }

  /// Waiting-time statistics (time in queue, excluding service).
  const Welford& wait_time_stats() const { return wait_times_; }

  /// Starts a new measurement window (batch boundary).
  void ResetWindow(SimTime now);

  /// Attaches an observability sink (nullptr detaches); the pool registers
  /// itself as a track and reports every service span and queue-depth
  /// change. Detached (the default), each hook is one null check.
  void AttachSpanSink(ServiceSpanSink* sink);

 private:
  struct Pending {
    SimTime service_time;
    SimTime enqueue_time;
    ServiceCompletion done;
  };

  void BeginService(Pending pending);
  void OnServiceComplete(ServiceCompletion done);
  /// Fires at fault_.end: hands idle capacity to everything the window made
  /// wait (all of it, for an infinite pool).
  void DrainAfterFaultWindow();

  Simulator* sim_;
  int num_servers_;
  bool infinite_;
  std::string name_;

  int busy_servers_ = 0;
  std::deque<Pending> cc_queue_;
  std::deque<Pending> normal_queue_;

  FaultWindow fault_;
  int64_t faulted_requests_ = 0;
  SimTime fault_delay_ = 0;

  int64_t completed_requests_ = 0;
  TimeWeightedValue busy_time_;
  TimeWeightedValue queue_len_;
  Welford wait_times_;

  ServiceSpanSink* span_sink_ = nullptr;
  int span_track_ = -1;
};

}  // namespace ccsim

#endif  // CCSIM_RES_SERVER_POOL_H_
