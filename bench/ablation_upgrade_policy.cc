// Ablation: lock upgrades vs static write locking.
//
// The paper's model read-locks every object and upgrades to write locks in
// the write phase — so two readers that both intend to write the same object
// deadlock (the dominant deadlock shape in the blocking algorithm). The
// alternative modeling choice, used by several of the studies the paper
// examines, write-locks predeclared write objects at read time, trading
// upgrade deadlocks for earlier, longer write-lock holds. This bench runs
// the blocking and immediate-restart algorithms both ways.
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — upgrade locking (paper) vs static write locking "
      "(1 CPU / 2 disks)",
      lengths);

  for (bool x_on_read : {false, true}) {
    EngineConfig base = bench::PaperBaseConfig();
    base.resources = ResourceConfig::Finite(1, 2);
    base.x_lock_on_read_intent = x_on_read;
    auto reports = bench::RunPaperSweep(base, lengths,
                                        {"blocking", "immediate_restart"});
    for (MetricsReport& r : reports) {
      r.algorithm += x_on_read ? " static" : " upgrade";
    }
    ReportColumns columns = ReportColumns::ThroughputOnly();
    columns.ratios = true;
    columns.response = true;
    bench::EmitFigure(
        x_on_read
            ? "Static write locking (X at read time; no upgrade deadlocks)"
            : "Upgrade locking (the paper's model)",
        x_on_read ? "ablation_upgrade_static" : "ablation_upgrade_paper",
        reports, columns);
  }
  return bench::BenchExitCode();
}
