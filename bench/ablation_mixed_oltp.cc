// Ablation: mixed OLTP + reporting workload — where multiversioning earns
// its keep.
//
// Two classes: 90% short update transactions (4-8 pages, write_prob 0.5) and
// 10% long read-only "report" transactions (20-40 pages). Under two-phase
// locking a long report holds read locks across its whole scan, stalling
// every updater that touches its pages; under MVTO the report reads old
// versions and never blocks or aborts anyone. Basic T/O and the optimistic
// algorithm sit in between: the report's reads are cheap but it keeps
// getting invalidated (or keeps invalidating writers). The per-class table
// shows *who pays* under each algorithm.
#include "bench/harness.h"

#include <iostream>

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — 90% short updates + 10% long read-only reports "
      "(1 CPU / 2 disks, mpl=25)",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(1, 2);
  base.workload.mpl = 25;
  base.workload.classes = {
      TxnClass{"update", 0.9, 6, 4, 8, 0.5},
      TxnClass{"report", 0.1, 30, 20, 40, 0.0},
  };

  const std::vector<std::string> algorithms = {
      "blocking", "optimistic", "basic_to", "mvto", "static_locking"};
  std::vector<bench::LabeledPoint> points;
  for (const std::string& algorithm : algorithms) {
    EngineConfig config = base;
    config.algorithm = algorithm;
    points.push_back({algorithm, config});
  }
  std::vector<MetricsReport> reports = bench::RunLabeledPoints(points, lengths);

  ReportColumns columns;
  columns.percentiles = true;
  bench::EmitFigure("Mixed OLTP + reports (aggregate)", "ablation_mixed_oltp",
                    reports, columns);
  PrintPerClassTable(std::cout, "Mixed OLTP + reports", reports);
  return bench::BenchExitCode();
}
