// Experiment 4b (Figures 14, 15): multiple resources — 25 CPUs and 50 disks.
//
// With useful utilizations down in the ~30% range the system starts behaving
// like it has infinite resources: the optimistic algorithm's best throughput
// edges out blocking's (paper: blocking peaked at 33.5% total / 30.1% useful
// disk utilization; optimistic at 62.6% / 32.6%). Blocking's utilization
// *falls* as mpl rises (lock thrashing); optimistic's waste grows instead.
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner("Experiment 4b — 25 CPUs / 50 disks, Figures 14-15",
                     lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(25, 50);
  auto reports = bench::RunPaperSweep(base, lengths);

  ReportColumns throughput = ReportColumns::ThroughputOnly();
  throughput.avg_mpl = true;
  bench::EmitFigure("Figure 14: Throughput (25 CPUs, 50 Disks)", "fig14",
                    reports, throughput);

  ReportColumns utils = ReportColumns::ThroughputOnly();
  utils.disk_util = true;
  bench::EmitFigure("Figure 15: Disk Utilization (25 CPUs, 50 Disks)", "fig15",
                    reports, utils);
  return bench::BenchExitCode();
}
