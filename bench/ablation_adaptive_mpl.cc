// Ablation: adaptive multiprogramming-level control (the paper's conclusion
// calls the design of such algorithms an open problem).
//
// For blocking and optimistic on 1 CPU / 2 disks, compare (a) the best and
// worst fixed mpl from the paper sweep against (b) a hill-climbing
// controller that starts from the *worst* high setting (mpl=200) and adjusts
// every 30 simulated seconds. The controller should recover most of the gap
// to the best fixed setting without knowing it in advance.
#include <iostream>

#include "bench/harness.h"
#include "core/adaptive_mpl.h"
#include "util/str.h"

namespace {

ccsim::MetricsReport RunWithController(const ccsim::EngineConfig& config,
                                       const ccsim::RunLengths& lengths) {
  using namespace ccsim;
  Simulator sim;
  ClosedSystem system(&sim, config);
  AdaptiveMplController::Options options;
  options.interval = 30 * kSecond;
  options.min_mpl = 5;
  options.max_mpl = config.workload.mpl;
  options.step = 10;
  AdaptiveMplController controller(&sim, &system, options);
  system.Prime();
  controller.Start();
  // Give the controller extra settling time beyond the normal warmup.
  MetricsReport report = system.RunExperiment(
      lengths.batches, lengths.batch_length, lengths.warmup + 240 * kSecond);
  report.algorithm += StringPrintf(" +controller(final mpl=%d)", system.mpl());
  return report;
}

}  // namespace

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — adaptive mpl control vs fixed mpl (1 CPU / 2 disks)",
      lengths);

  // The four fixed-mpl baselines are independent points — run them across
  // CCSIM_JOBS workers. The controller runs drive a live Simulator through
  // a bespoke loop, so they stay serial below.
  std::vector<bench::LabeledPoint> fixed_points;
  for (const char* algorithm : {"blocking", "optimistic"}) {
    for (int mpl : {25, 200}) {  // Near-best and worst fixed settings.
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.algorithm = algorithm;
      config.workload.mpl = mpl;
      fixed_points.push_back({StringPrintf("%s fixed", algorithm), config});
    }
  }
  std::vector<MetricsReport> fixed_reports =
      bench::RunLabeledPoints(fixed_points, lengths);

  std::vector<MetricsReport> reports;
  size_t fixed_index = 0;
  for (const char* algorithm : {"blocking", "optimistic"}) {
    reports.push_back(fixed_reports[fixed_index++]);
    reports.push_back(fixed_reports[fixed_index++]);

    EngineConfig adaptive = bench::PaperBaseConfig();
    adaptive.resources = ResourceConfig::Finite(1, 2);
    adaptive.algorithm = algorithm;
    adaptive.workload.mpl = 200;  // Start from the worst setting.
    MetricsReport r = RunWithController(adaptive, lengths);
    std::string label = r.algorithm;
    r.algorithm = std::string(algorithm) + " adaptive";
    reports.push_back(r);
    std::cerr << "  " << label << ": " << r.throughput.mean << " tps\n";
  }

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.avg_mpl = true;
  columns.response = true;
  bench::EmitFigure(
      "Adaptive mpl control (controller rows started at mpl=200)",
      "ablation_adaptive_mpl", reports, columns);
  return bench::BenchExitCode();
}
