// Ablation: graceful degradation under simulated resource-fault windows
// (docs/FAULTS.md, "Fault windows").
//
// The paper's thrashing analysis is about the system degrading *gracefully*
// as contention rises; this bench asks the same question about transient
// resource faults. Each algorithm runs the limited-resource base point
// three ways: fault-free, with a mid-run disk-array stall window, and with
// a mid-run CPU outage window. A robust harness shows bounded throughput
// loss (work deferred by the window completes after it) and elevated — but
// finite — response times; a livelock-prone one would blow its watchdog
// budget and fail the point instead of printing a row.
//
// The windows open well past warmup and close well before the run ends, so
// every deferred request completes inside the measured interval.
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — graceful degradation under disk-stall and CPU-outage "
      "windows (1 cpu x 2 disks, mpl=50)",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(1, 2);
  base.workload.mpl = 50;

  // One window sized to a few hundred transaction times, opening after the
  // first measured batch is underway.
  const SimTime window_start = lengths.warmup + lengths.batch_length / 2;
  const SimTime window_end = window_start + lengths.batch_length;

  std::vector<bench::LabeledPoint> points;
  for (const std::string& algorithm : PaperAlgorithms()) {
    EngineConfig baseline = base;
    baseline.algorithm = algorithm;
    points.push_back({algorithm + " / no fault", baseline});

    EngineConfig disk_stall = baseline;
    disk_stall.resources.disk_fault = {FaultWindowKind::kStall, window_start,
                                       window_end};
    points.push_back({algorithm + " / disk stall", disk_stall});

    EngineConfig cpu_outage = baseline;
    cpu_outage.resources.cpu_fault = {FaultWindowKind::kOutage, window_start,
                                      window_end};
    points.push_back({algorithm + " / cpu outage", cpu_outage});
  }

  std::vector<MetricsReport> reports = bench::RunLabeledPoints(points, lengths);

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.response = true;
  columns.ratios = true;
  columns.avg_mpl = true;
  bench::EmitFigure(
      "Fault-window degradation (expect bounded loss, no livelock)",
      "ablation_fault_windows", reports, columns);
  return bench::BenchExitCode();
}
