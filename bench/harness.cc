#include "bench/harness.h"

#include <cstdio>
#include <iostream>

#include "exec/jobs.h"
#include "obs/obs_config.h"
#include "util/check.h"
#include "util/env.h"

namespace ccsim {
namespace bench {
namespace {

/// Failed points and failed output writes accumulated by this process
/// (progress callbacks are serialized, and benches are single-threaded
/// outside the runner, so a plain counter suffices).
int g_failures = 0;

void PrintPointProgress(const PointResult& point, const std::string& label) {
  if (point.ok()) {
    std::fprintf(stderr, "  %-18s mpl=%-4d thruput=%7.2f (%lld commits)%s\n",
                 label.c_str(), point.config.workload.mpl,
                 point.report.throughput.mean,
                 static_cast<long long>(point.report.commits),
                 point.from_journal ? " [journal]" : "");
  } else {
    std::fprintf(stderr, "  %-18s mpl=%-4d FAILED: %s\n", label.c_str(),
                 point.config.workload.mpl, point.status.ToString().c_str());
  }
}

}  // namespace

RunLengths BenchLengths(double batch_seconds, double warmup_seconds) {
  RunLengths defaults;
  defaults.batches = 20;
  defaults.batch_length = FromSeconds(batch_seconds);
  defaults.warmup = FromSeconds(warmup_seconds);
  return RunLengths::FromEnv(defaults);
}

EngineConfig PaperBaseConfig() {
  EngineConfig config;           // WorkloadParams defaults are Table 2.
  config.resources = ResourceConfig::Finite(1, 2);
  int64_t seed = GetEnvInt("CCSIM_SEED", 42);
  CCSIM_CHECK_GE(seed, 0)
      << "CCSIM_SEED must be non-negative (a negative value would wrap to a "
         "huge unsigned seed), got " << seed;
  config.seed = static_cast<uint64_t>(seed);
  return config;
}

std::vector<MetricsReport> RunPaperSweep(
    const EngineConfig& base, const RunLengths& lengths,
    const std::vector<std::string>& algorithms) {
  SweepConfig sweep;
  sweep.base = base;
  sweep.algorithms = algorithms;
  sweep.mpls = PaperMplLevels();
  sweep.lengths = lengths;
  SweepOutcome outcome = RunSweepChecked(sweep, [](const PointResult& point) {
    PrintPointProgress(point, point.config.algorithm);
  });
  if (!outcome.ok()) {
    g_failures += static_cast<int>(outcome.failures().size());
    std::fprintf(stderr, "sweep completed with failures:\n%s",
                 outcome.FailureSummary().c_str());
  }
  return outcome.SuccessfulReports();
}

std::vector<MetricsReport> RunLabeledPoints(
    const std::vector<LabeledPoint>& points, const RunLengths& lengths) {
  std::vector<EngineConfig> configs;
  configs.reserve(points.size());
  for (const LabeledPoint& point : points) configs.push_back(point.config);
  SweepOutcome outcome = RunPointsChecked(
      configs, lengths, /*jobs=*/0, [&points](const PointResult& point) {
        PrintPointProgress(point, points[point.index].label);
      });
  if (!outcome.ok()) {
    g_failures += static_cast<int>(outcome.failures().size());
    std::fprintf(stderr, "labeled points completed with failures:\n%s",
                 outcome.FailureSummary().c_str());
  }
  std::vector<MetricsReport> reports;
  reports.reserve(outcome.points.size());
  for (const PointResult& point : outcome.points) {
    if (!point.ok()) continue;
    MetricsReport report = point.report;
    report.algorithm = points[point.index].label;
    reports.push_back(std::move(report));
  }
  return reports;
}

int BenchExitCode() {
  if (g_failures > 0) {
    std::fprintf(stderr, "bench finished with %d failure(s)\n", g_failures);
    return 1;
  }
  return 0;
}

void EmitFigure(const std::string& title, const std::string& csv_name,
                const std::vector<MetricsReport>& reports,
                const ReportColumns& columns) {
  PrintReportTable(std::cout, title, reports, columns);
  std::string path = CsvPathFor(csv_name);
  if (path.empty()) return;
  if (!WriteReportCsv(path, reports)) {
    std::cerr << "failed to write " << path
              << " (disk full, or CCSIM_CSV_DIR missing/unwritable?)\n";
    ++g_failures;
    return;  // No companion script for a CSV that does not exist.
  }
  std::cout << "(csv: " << path << ")\n";
  // A companion gnuplot script: run `gnuplot <name>.gp` inside the output
  // directory to render <name>.csv.png.
  std::string stem = path;
  const std::string kCsvSuffix = ".csv";
  if (stem.size() >= kCsvSuffix.size() &&
      stem.compare(stem.size() - kCsvSuffix.size(), kCsvSuffix.size(),
                   kCsvSuffix) == 0) {
    stem.resize(stem.size() - kCsvSuffix.size());
  }
  if (!WriteThroughputGnuplot(stem + ".gp", csv_name + ".csv", title,
                              reports)) {
    std::cerr << "failed to write " << stem << ".gp\n";
    ++g_failures;
  }
}

void PrintBanner(const std::string& what, const RunLengths& lengths) {
  std::cout << "ccsim bench: " << what << "\n"
            << "  methodology: " << lengths.batches << " batches x "
            << ToSeconds(lengths.batch_length) << "s after "
            << ToSeconds(lengths.warmup)
            << "s warmup, 90% confidence intervals (batch means)\n"
            << "  execution: " << ExperimentJobs()
            << " worker thread(s) (CCSIM_JOBS; results are job-count "
               "independent)\n";
  ObsConfig obs = ObsConfig::FromEnv(ObsConfig{});
  if (obs.enabled) {
    std::cout << "  observability: on (phase breakdown";
    if (obs.SamplingOn()) {
      std::cout << "; time-series every " << ToSeconds(obs.sample_interval)
                << "s -> " << obs.sample_dir;
    }
    if (obs.TracingOn()) std::cout << "; perfetto traces -> " << obs.trace_dir;
    std::cout << ")\n";
  }
}

}  // namespace bench
}  // namespace ccsim
