#include "bench/harness.h"

#include <cstdio>
#include <iostream>

#include "util/env.h"

namespace ccsim {
namespace bench {

RunLengths BenchLengths(double batch_seconds, double warmup_seconds) {
  RunLengths defaults;
  defaults.batches = 20;
  defaults.batch_length = FromSeconds(batch_seconds);
  defaults.warmup = FromSeconds(warmup_seconds);
  return RunLengths::FromEnv(defaults);
}

EngineConfig PaperBaseConfig() {
  EngineConfig config;           // WorkloadParams defaults are Table 2.
  config.resources = ResourceConfig::Finite(1, 2);
  config.seed = static_cast<uint64_t>(GetEnvInt("CCSIM_SEED", 42));
  return config;
}

std::vector<MetricsReport> RunPaperSweep(
    const EngineConfig& base, const RunLengths& lengths,
    const std::vector<std::string>& algorithms) {
  SweepConfig sweep;
  sweep.base = base;
  sweep.algorithms = algorithms;
  sweep.mpls = PaperMplLevels();
  sweep.lengths = lengths;
  return RunSweep(sweep, [](const MetricsReport& r) {
    std::fprintf(stderr, "  %-18s mpl=%-4d thruput=%7.2f (%lld commits)\n",
                 r.algorithm.c_str(), r.mpl, r.throughput.mean,
                 static_cast<long long>(r.commits));
  });
}

void EmitFigure(const std::string& title, const std::string& csv_name,
                const std::vector<MetricsReport>& reports,
                const ReportColumns& columns) {
  PrintReportTable(std::cout, title, reports, columns);
  std::string path = CsvPathFor(csv_name);
  if (!path.empty()) {
    if (WriteReportCsv(path, reports)) {
      std::cout << "(csv: " << path << ")\n";
    } else {
      std::cerr << "failed to write " << path << "\n";
    }
    // A companion gnuplot script: run `gnuplot <name>.gp` inside the output
    // directory to render <name>.csv.png.
    WriteThroughputGnuplot(path.substr(0, path.size() - 4) + ".gp",
                           csv_name + ".csv", title, reports);
  }
}

void PrintBanner(const std::string& what, const RunLengths& lengths) {
  std::cout << "ccsim bench: " << what << "\n"
            << "  methodology: " << lengths.batches << " batches x "
            << ToSeconds(lengths.batch_length) << "s after "
            << ToSeconds(lengths.warmup)
            << "s warmup, 90% confidence intervals (batch means)\n";
}

}  // namespace bench
}  // namespace ccsim
