#include "bench/harness.h"

#include <cstdio>
#include <iostream>

#include "exec/jobs.h"
#include "util/check.h"
#include "util/env.h"

namespace ccsim {
namespace bench {

RunLengths BenchLengths(double batch_seconds, double warmup_seconds) {
  RunLengths defaults;
  defaults.batches = 20;
  defaults.batch_length = FromSeconds(batch_seconds);
  defaults.warmup = FromSeconds(warmup_seconds);
  return RunLengths::FromEnv(defaults);
}

EngineConfig PaperBaseConfig() {
  EngineConfig config;           // WorkloadParams defaults are Table 2.
  config.resources = ResourceConfig::Finite(1, 2);
  int64_t seed = GetEnvInt("CCSIM_SEED", 42);
  CCSIM_CHECK_GE(seed, 0)
      << "CCSIM_SEED must be non-negative (a negative value would wrap to a "
         "huge unsigned seed), got " << seed;
  config.seed = static_cast<uint64_t>(seed);
  return config;
}

std::vector<MetricsReport> RunPaperSweep(
    const EngineConfig& base, const RunLengths& lengths,
    const std::vector<std::string>& algorithms) {
  SweepConfig sweep;
  sweep.base = base;
  sweep.algorithms = algorithms;
  sweep.mpls = PaperMplLevels();
  sweep.lengths = lengths;
  return RunSweep(sweep, [](const MetricsReport& r) {
    std::fprintf(stderr, "  %-18s mpl=%-4d thruput=%7.2f (%lld commits)\n",
                 r.algorithm.c_str(), r.mpl, r.throughput.mean,
                 static_cast<long long>(r.commits));
  });
}

std::vector<MetricsReport> RunLabeledPoints(
    const std::vector<LabeledPoint>& points, const RunLengths& lengths) {
  std::vector<EngineConfig> configs;
  configs.reserve(points.size());
  for (const LabeledPoint& point : points) configs.push_back(point.config);
  std::vector<MetricsReport> reports = RunPoints(
      configs, lengths, /*jobs=*/0,
      [&points](size_t index, const MetricsReport& r) {
        std::fprintf(stderr, "  %-28s thruput=%7.2f (%lld commits)\n",
                     points[index].label.c_str(), r.throughput.mean,
                     static_cast<long long>(r.commits));
      });
  for (size_t i = 0; i < reports.size(); ++i) {
    reports[i].algorithm = points[i].label;
  }
  return reports;
}

void EmitFigure(const std::string& title, const std::string& csv_name,
                const std::vector<MetricsReport>& reports,
                const ReportColumns& columns) {
  PrintReportTable(std::cout, title, reports, columns);
  std::string path = CsvPathFor(csv_name);
  if (path.empty()) return;
  if (!WriteReportCsv(path, reports)) {
    std::cerr << "failed to write " << path << "\n";
    return;  // No companion script for a CSV that does not exist.
  }
  std::cout << "(csv: " << path << ")\n";
  // A companion gnuplot script: run `gnuplot <name>.gp` inside the output
  // directory to render <name>.csv.png.
  std::string stem = path;
  const std::string kCsvSuffix = ".csv";
  if (stem.size() >= kCsvSuffix.size() &&
      stem.compare(stem.size() - kCsvSuffix.size(), kCsvSuffix.size(),
                   kCsvSuffix) == 0) {
    stem.resize(stem.size() - kCsvSuffix.size());
  }
  WriteThroughputGnuplot(stem + ".gp", csv_name + ".csv", title, reports);
}

void PrintBanner(const std::string& what, const RunLengths& lengths) {
  std::cout << "ccsim bench: " << what << "\n"
            << "  methodology: " << lengths.batches << " batches x "
            << ToSeconds(lengths.batch_length) << "s after "
            << ToSeconds(lengths.warmup)
            << "s warmup, 90% confidence intervals (batch means)\n"
            << "  execution: " << ExperimentJobs()
            << " worker thread(s) (CCSIM_JOBS; results are job-count "
               "independent)\n";
}

}  // namespace bench
}  // namespace ccsim
