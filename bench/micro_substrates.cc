// google-benchmark microbenchmarks for the simulator substrates: event
// scheduling, random variates, workload generation, lock-manager hot paths,
// deadlock detection, and whole-engine event throughput. These establish
// that a full figure sweep is event-bound, not allocator- or
// data-structure-bound.
#include <benchmark/benchmark.h>

#include "cc/deadlock.h"
#include "cc/basic_to.h"
#include "cc/lock_manager.h"
#include "cc/mvto.h"
#include "cc/optimistic.h"
#include "core/closed_system.h"
#include "sim/simulator.h"
#include "util/random.h"
#include "wl/workload.h"

namespace ccsim {
namespace {

void BM_EventScheduleFire(benchmark::State& state) {
  Simulator sim;
  int64_t fired = 0;
  for (auto _ : state) {
    sim.Schedule(1, [&fired] { ++fired; });
    sim.Step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventScheduleFire);

void BM_EventScheduleCancel(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    EventId id = sim.Schedule(1000, [] {});
    sim.Cancel(id);
  }
}
BENCHMARK(BM_EventScheduleCancel);

void BM_EventHeapDepth(benchmark::State& state) {
  // Scheduling against a deep pending heap.
  Simulator sim;
  const int depth = static_cast<int>(state.range(0));
  for (int i = 0; i < depth; ++i) {
    sim.Schedule(1000000 + i, [] {});
  }
  int64_t fired = 0;
  for (auto _ : state) {
    sim.Schedule(1, [&fired] { ++fired; });
    sim.Step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventHeapDepth)->Arg(100)->Arg(10000);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(1);
  double sum = 0;
  for (auto _ : state) sum += rng.Exponential(1.0);
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_RngExponential);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    auto sample = rng.SampleWithoutReplacement(state.range(0), 8);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(1000)->Arg(1000000);

void BM_WorkloadGenerate(benchmark::State& state) {
  WorkloadParams params;
  WorkloadGenerator gen(params, Rng(3), Rng(4));
  for (auto _ : state) {
    TxnSpec spec = gen.NextTransaction();
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_WorkloadGenerate);

void BM_LockGrantRelease(benchmark::State& state) {
  LockManager lm;
  for (auto _ : state) {
    for (ObjectId obj = 0; obj < 8; ++obj) {
      lm.Request(1, obj, LockMode::kShared, true);
    }
    lm.ReleaseAll(1);
  }
}
BENCHMARK(BM_LockGrantRelease);

void BM_LockConflictQueue(benchmark::State& state) {
  // A hot object with a holder and a waiter churn.
  for (auto _ : state) {
    LockManager lm;
    lm.Request(1, 0, LockMode::kExclusive, true);
    for (TxnId t = 2; t < 10; ++t) {
      lm.Request(t, 0, LockMode::kShared, true);
    }
    benchmark::DoNotOptimize(lm.ReleaseAll(1));
  }
}
BENCHMARK(BM_LockConflictQueue);

void BM_DeadlockDetectionChain(benchmark::State& state) {
  // A wait chain of length N with a cycle at the end; detection cost is the
  // DFS over the chain.
  const int n = static_cast<int>(state.range(0));
  LockManager lm;
  for (TxnId t = 1; t <= n; ++t) {
    lm.Request(t, t, LockMode::kExclusive, true);
  }
  for (TxnId t = 2; t <= n; ++t) {
    lm.Request(t, t - 1, LockMode::kExclusive, true);  // t waits on t-1.
  }
  lm.Request(1, n, LockMode::kExclusive, true);  // Closes the cycle.
  DeadlockDetector detector(&lm, VictimPolicy::kYoungest);
  for (auto _ : state) {
    auto cycle = detector.FindCycle(1, {});
    benchmark::DoNotOptimize(cycle);
  }
}
BENCHMARK(BM_DeadlockDetectionChain)->Arg(4)->Arg(32)->Arg(128);

void BM_OptimisticValidate(benchmark::State& state) {
  // Validation cost against a populated committed-writes table.
  OptimisticCC cc;
  SimTime now = 0;
  cc.SetCallbacks(CCCallbacks{[](TxnId) {}, [](TxnId) {},
                              [&now]() { return now; }, nullptr, nullptr});
  // Populate history: 1000 committed writers.
  for (TxnId t = 1; t <= 1000; ++t) {
    cc.OnBegin(t, 0, 0);
    cc.WriteRequest(t, t % 200);
    cc.Validate(t);
    now = t;
    cc.Commit(t);
  }
  TxnId next = 10000;
  for (auto _ : state) {
    TxnId t = next++;
    cc.OnBegin(t, now, now);
    for (ObjectId obj = 0; obj < 8; ++obj) cc.ReadRequest(t, obj * 17 % 200);
    bool ok = cc.Validate(t);
    benchmark::DoNotOptimize(ok);
    if (ok) {
      cc.Commit(t);
    } else {
      cc.Abort(t);
    }
  }
}
BENCHMARK(BM_OptimisticValidate);

void BM_BasicToRequests(benchmark::State& state) {
  BasicTimestampOrderingCC cc;
  cc.SetCallbacks(CCCallbacks{[](TxnId) {}, [](TxnId) {}, []() { return 0; },
                              nullptr, nullptr});
  TxnId next = 1;
  for (auto _ : state) {
    TxnId t = next++;
    cc.OnBegin(t, 0, 0);
    for (ObjectId obj = 0; obj < 8; ++obj) cc.ReadRequest(t, obj);
    cc.WriteRequest(t, 3);
    cc.Commit(t);
  }
}
BENCHMARK(BM_BasicToRequests);

void BM_MvtoVersionChain(benchmark::State& state) {
  // Read cost against a deep (GC-bounded) version chain on a hot object.
  MultiversionTimestampOrderingCC cc;
  cc.SetCallbacks(CCCallbacks{[](TxnId) {}, [](TxnId) {}, []() { return 0; },
                              nullptr, nullptr});
  for (TxnId t = 1; t <= 64; ++t) {
    cc.OnBegin(t, 0, 0);
    cc.WriteRequest(t, 0);
    cc.Commit(t);
  }
  TxnId next = 1000;
  for (auto _ : state) {
    TxnId t = next++;
    cc.OnBegin(t, 0, 0);
    cc.ReadRequest(t, 0);
    cc.Commit(t);
  }
}
BENCHMARK(BM_MvtoVersionChain);

void BM_EngineEventsPerSecond(benchmark::State& state) {
  // Whole-engine throughput: simulated events processed per wall second on
  // the paper's Table 2 workload at mpl=50.
  for (auto _ : state) {
    Simulator sim;
    EngineConfig config;
    config.workload.mpl = 50;
    config.resources = ResourceConfig::Finite(1, 2);
    config.algorithm = "blocking";
    ClosedSystem system(&sim, config);
    system.Prime();
    sim.RunUntil(20 * kSecond);
    state.counters["sim_events"] = static_cast<double>(sim.events_fired());
    benchmark::DoNotOptimize(system.total_commits());
  }
}
BENCHMARK(BM_EngineEventsPerSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ccsim

BENCHMARK_MAIN();
