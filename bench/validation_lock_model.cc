// Validation/illustration: the analytical lock-contention model vs the
// simulator, for the blocking algorithm.
//
// The analytical studies the paper reconciles ([Tay84], [Thom83], ...)
// predict blocking behavior with a few lines of mean-value algebra. This
// bench runs our Tay-style model (analytic/lock_contention.h) against the
// simulator across the mpl sweep on both resource models. Expected: close
// agreement below the knee, with the model's thrashing flag firing right
// where the simulated curve rolls over — and visible divergence past it,
// where mean-value assumptions (no deadlocks, uniform progress) break. The
// point is the paper's own: an analytical model is exactly as good as its
// assumptions' match to the operating region.
#include <cstdio>

#include "analytic/lock_contention.h"
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Validation — Tay-style analytic lock model vs simulator (blocking)",
      lengths);

  struct Hw {
    ResourceConfig config;
    const char* label;
  };
  const Hw hardware[] = {
      {ResourceConfig::Finite(1, 2), "1 CPU, 2 disks"},
      {ResourceConfig::Infinite(), "infinite resources"},
  };

  for (const Hw& hw : hardware) {
    LockContentionModel model(WorkloadParams{}, hw.config);
    std::printf("\n== %s ==\n%6s %11s %11s %9s %10s %10s %6s\n", hw.label,
                "mpl", "sim(tps)", "model(tps)", "delta", "sim B", "model B",
                "knee?");
    const std::vector<int> mpls = PaperMplLevels();
    std::vector<EngineConfig> configs;
    for (int mpl : mpls) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = hw.config;
      config.workload.mpl = mpl;
      config.algorithm = "blocking";
      configs.push_back(config);
    }
    std::vector<MetricsReport> reports = RunPoints(configs, lengths);
    for (size_t i = 0; i < mpls.size(); ++i) {
      const MetricsReport& measured = reports[i];
      LockContentionResult predicted = model.Solve(mpls[i]);
      std::printf("%6d %11.2f %11.2f %8.1f%% %10.3f %10.3f %6s\n", mpls[i],
                  measured.throughput.mean, predicted.throughput,
                  100.0 * (predicted.throughput - measured.throughput.mean) /
                      measured.throughput.mean,
                  measured.block_ratio.mean, predicted.blocks_per_txn,
                  predicted.thrashing ? "YES" : "");
    }
  }
  std::printf(
      "\n'B' is blocks per commit; 'knee?' flags the analytic thrashing\n"
      "criterion (expected waiting >= expected execution).\n");
  return bench::BenchExitCode();
}
