// Shared scaffolding for the figure-reproduction benches. Each bench binary
// reproduces one or more figures from the paper: it sweeps the three
// algorithms over the paper's multiprogramming levels, prints one table per
// figure, and optionally dumps CSV (set CCSIM_CSV_DIR).
//
// Environment knobs (see core/experiment.h and docs/EXECUTION.md):
// CCSIM_BATCHES, CCSIM_BATCH_SECONDS, CCSIM_WARMUP_SECONDS, CCSIM_MPLS,
// CCSIM_SEED, CCSIM_JOBS (worker threads for the sweep; results are
// identical at any job count), CCSIM_MAX_EVENTS / CCSIM_POINT_TIMEOUT_SECONDS
// (per-point watchdog budgets), CCSIM_JOURNAL (crash-safe resume),
// CCSIM_OBS / CCSIM_SAMPLE_SECONDS / CCSIM_TRACE (observability: phase
// breakdown, time-series sampler, Perfetto trace export),
// CCSIM_HEARTBEAT_SECONDS (wall-clock progress lines),
// CCSIM_REPORT_COLUMNS (table column selection) — docs/OBSERVABILITY.md,
// CCSIM_FAULTS (deterministic fault-injection plan — docs/FAULTS.md).
#ifndef CCSIM_BENCH_HARNESS_H_
#define CCSIM_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"

namespace ccsim {
namespace bench {

/// Default statistical effort for bench runs: the paper's 20 batches.
/// Override with CCSIM_BATCHES / CCSIM_BATCH_SECONDS for quick looks.
RunLengths BenchLengths(double batch_seconds = 20.0, double warmup_seconds = 40.0);

/// The paper's Table 2 base configuration (db_size 1000, 200 terminals,
/// 1 s external think, 35 ms obj_io, 15 ms obj_cpu), with the master seed
/// taken from CCSIM_SEED (default 42; must be non-negative).
EngineConfig PaperBaseConfig();

/// Runs one sweep of `algorithms` (default: the paper's three) over the
/// paper's mpl levels with progress lines on stderr. Points run across
/// CCSIM_JOBS worker threads; progress lines arrive in completion order but
/// the returned reports are always in sweep order.
///
/// Runs through the checked runner: a failed point (check trip, watchdog
/// budget, audit violation) prints a FAILED line plus its diagnostics, is
/// dropped from the returned reports, and makes BenchExitCode() nonzero —
/// the sweep's healthy points still complete and print.
std::vector<MetricsReport> RunPaperSweep(
    const EngineConfig& base, const RunLengths& lengths,
    const std::vector<std::string>& algorithms = PaperAlgorithms());

/// An ad-hoc parameter point for the ablation benches: `label` replaces
/// report.algorithm in tables, CSVs, and progress lines.
struct LabeledPoint {
  std::string label;
  EngineConfig config;
};

/// Runs the points through the parallel runner (CCSIM_JOBS workers, one
/// private Simulator per point, progress lines on stderr) and stamps each
/// report with its label. Results are in input order at any job count.
/// Failure semantics as in RunPaperSweep: failed points are reported,
/// dropped, and reflected in BenchExitCode().
std::vector<MetricsReport> RunLabeledPoints(
    const std::vector<LabeledPoint>& points, const RunLengths& lengths);

/// Exit code for a bench main(): 0 when every point of every sweep run by
/// this process succeeded and every requested output file was written, 1
/// otherwise. Each bench ends with `return ccsim::bench::BenchExitCode();`
/// so scripted reproductions (scripts/, CI) notice partial figures.
int BenchExitCode();

/// Prints the table and, when CCSIM_CSV_DIR is set, writes `csv_name`.csv
/// plus a companion gnuplot script (the script is only written when the CSV
/// itself succeeded, so a `.gp` never points at a missing CSV).
void EmitFigure(const std::string& title, const std::string& csv_name,
                const std::vector<MetricsReport>& reports,
                const ReportColumns& columns);

/// Prints the standard bench banner: what is being reproduced, with what
/// statistical effort, and across how many worker threads.
void PrintBanner(const std::string& what, const RunLengths& lengths);

}  // namespace bench
}  // namespace ccsim

#endif  // CCSIM_BENCH_HARNESS_H_
