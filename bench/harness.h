// Shared scaffolding for the figure-reproduction benches. Each bench binary
// reproduces one or more figures from the paper: it sweeps the three
// algorithms over the paper's multiprogramming levels, prints one table per
// figure, and optionally dumps CSV (set CCSIM_CSV_DIR).
//
// Environment knobs (see core/experiment.h): CCSIM_BATCHES,
// CCSIM_BATCH_SECONDS, CCSIM_WARMUP_SECONDS, CCSIM_MPLS, CCSIM_SEED.
#ifndef CCSIM_BENCH_HARNESS_H_
#define CCSIM_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"

namespace ccsim {
namespace bench {

/// Default statistical effort for bench runs: the paper's 20 batches.
/// Override with CCSIM_BATCHES / CCSIM_BATCH_SECONDS for quick looks.
RunLengths BenchLengths(double batch_seconds = 20.0, double warmup_seconds = 40.0);

/// The paper's Table 2 base configuration (db_size 1000, 200 terminals,
/// 1 s external think, 35 ms obj_io, 15 ms obj_cpu), with the master seed
/// taken from CCSIM_SEED (default 42).
EngineConfig PaperBaseConfig();

/// Runs one sweep of `algorithms` (default: the paper's three) over the
/// paper's mpl levels with progress lines on stderr.
std::vector<MetricsReport> RunPaperSweep(
    const EngineConfig& base, const RunLengths& lengths,
    const std::vector<std::string>& algorithms = PaperAlgorithms());

/// Prints the table and, when CCSIM_CSV_DIR is set, writes `csv_name`.csv.
void EmitFigure(const std::string& title, const std::string& csv_name,
                const std::vector<MetricsReport>& reports,
                const ReportColumns& columns);

/// Prints the standard bench banner: what is being reproduced and with what
/// statistical effort.
void PrintBanner(const std::string& what, const RunLengths& lengths);

}  // namespace bench
}  // namespace ccsim

#endif  // CCSIM_BENCH_HARNESS_H_
