// Ablation: restart-delay sensitivity for the immediate-restart algorithm.
//
// The paper (§4.2) reports a sensitivity analysis: "a delay of about one
// transaction time is best, and throughput begins to drop off rapidly when
// the delay exceeds more than a few transaction times." This bench sweeps
// fixed exponential delays from 1/8x to 8x the uncontended transaction time
// under infinite resources (where the paper found the sensitivity most
// pronounced) and compares against the adaptive policy the paper adopted.
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — restart-delay sensitivity (immediate-restart, infinite "
      "resources, mpl=100)",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Infinite();
  base.algorithm = "immediate_restart";
  base.workload.mpl = 100;

  // Uncontended transaction time: 8 reads * 50ms + 2 writes * (15+35)ms.
  const double txn_seconds = 0.5;
  const double multipliers[] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

  std::vector<bench::LabeledPoint> points;
  for (double m : multipliers) {
    EngineConfig config = base;
    config.restart_delay_mode = RestartDelayMode::kFixed;
    config.fixed_restart_delay = FromSeconds(m * txn_seconds);
    // Reuse the algorithm column to label the delay setting.
    points.push_back({StringPrintf("fixed %.3gx txn", m), config});
  }
  {
    EngineConfig config = base;
    config.restart_delay_mode = RestartDelayMode::kAdaptive;
    points.push_back({"adaptive (paper)", config});
  }
  std::vector<MetricsReport> reports = bench::RunLabeledPoints(points, lengths);

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.response = true;
  columns.ratios = true;
  columns.avg_mpl = true;
  bench::EmitFigure(
      "Restart-delay sensitivity (expect a knee near ~1 transaction time)",
      "ablation_restart_delay", reports, columns);
  return bench::BenchExitCode();
}
