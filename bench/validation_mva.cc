// Validation: simulator vs Mean Value Analysis in the contention-free limit.
//
// With the database made huge (no data contention), the closed system is a
// product-form queueing network, and the simulator must track the exact MVA
// solution. This is the boundary condition every concurrency control result
// in this repo rests on: whatever differences the figures show between
// algorithms are caused by data contention, not by resource-model artifacts.
// (MVA assumes exponential service; the simulator uses the paper's constant
// service times, which queue slightly less, so simulated throughput may sit
// a few percent above prediction mid-range — exact at both asymptotes.)
#include <cstdio>

#include "bench/harness.h"
#include "analytic/mva.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Validation — simulator vs MVA, contention-free Table 2 workload",
      lengths);

  struct Hw {
    ResourceConfig config;
    const char* label;
  };
  const Hw hardware[] = {
      {ResourceConfig::Finite(1, 2), "1 CPU, 2 disks"},
      {ResourceConfig::Finite(5, 10), "5 CPUs, 10 disks"},
      {ResourceConfig::Infinite(), "infinite"},
  };

  const std::vector<int> populations = {1, 5, 25, 50, 100, 200};
  for (const Hw& hw : hardware) {
    std::printf("\n== %s ==\n%6s %12s %12s %8s\n", hw.label, "terms",
                "sim (tps)", "mva (tps)", "delta");
    std::vector<EngineConfig> configs;
    for (int population : populations) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = hw.config;
      config.workload.db_size = 1000000;  // Contention-free.
      config.workload.num_terms = population;
      config.workload.mpl = population;
      config.algorithm = "blocking";
      configs.push_back(config);
    }
    std::vector<MetricsReport> reports = RunPoints(configs, lengths);
    for (size_t i = 0; i < populations.size(); ++i) {
      MvaSolver solver = BuildPaperNetwork(configs[i].workload, hw.config);
      double predicted = solver.Solve(populations[i]).throughput;
      std::printf("%6d %12.2f %12.2f %7.1f%%\n", populations[i],
                  reports[i].throughput.mean, predicted,
                  100.0 * (reports[i].throughput.mean - predicted) / predicted);
    }
  }
  std::printf(
      "\nBottleneck law check (1 CPU, 2 disks): disks saturate at %.2f tps\n",
      BuildPaperNetwork(WorkloadParams{}, ResourceConfig::Finite(1, 2))
          .BottleneckThroughput());
  return bench::BenchExitCode();
}
