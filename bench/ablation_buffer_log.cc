// Ablation: buffer-pool hit rate and commit logging — refining the paper's
// constant-cost I/O model.
//
// The paper charges every object access the full 35 ms obj_io and models no
// recovery cost. Two refinements with opposite effects on the blocking vs
// optimistic verdict:
//  * A buffer pool (reads hit memory with probability p) drains load off
//    the disks. As p rises, the 1 CPU / 2 disk machine drifts toward the
//    "plentiful resources" regime where wasted optimistic re-execution
//    stops mattering — the same implication as Experiment 4, reached
//    through software instead of hardware.
//  * A commit log (one forced sequential write per update transaction)
//    adds a serial resource that every algorithm pays equally at commit.
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — buffer hits and commit logging (1 CPU / 2 disks, mpl=50)",
      lengths);

  std::vector<bench::LabeledPoint> buffer_points;
  for (double hit : {0.0, 0.5, 0.8, 0.95}) {
    for (const std::string& algorithm : {std::string("blocking"),
                                         std::string("optimistic")}) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.workload.mpl = 50;
      config.workload.buffer_hit_prob = hit;
      config.algorithm = algorithm;
      buffer_points.push_back(
          {StringPrintf("hit=%.0f%% %s", hit * 100, algorithm.c_str()),
           config});
    }
  }
  std::vector<MetricsReport> buffer_reports =
      bench::RunLabeledPoints(buffer_points, lengths);
  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.ratios = true;
  columns.disk_util = true;
  bench::EmitFigure(
      "Buffer hit sweep (high hit rates shrink blocking's edge)",
      "ablation_buffer", buffer_reports, columns);

  std::vector<bench::LabeledPoint> log_points;
  for (double log_ms : {0.0, 5.0, 20.0}) {
    for (const std::string& algorithm : {std::string("blocking"),
                                         std::string("optimistic")}) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.workload.mpl = 25;
      config.workload.log_io = FromMillis(log_ms);
      config.algorithm = algorithm;
      log_points.push_back(
          {StringPrintf("log=%.0fms %s", log_ms, algorithm.c_str()), config});
    }
  }
  std::vector<MetricsReport> log_reports =
      bench::RunLabeledPoints(log_points, lengths);
  bench::EmitFigure("Commit-log cost sweep", "ablation_log", log_reports,
                    columns);
  return bench::BenchExitCode();
}
