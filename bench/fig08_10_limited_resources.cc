// Experiment 3 (Figures 8, 9, 10): the resource-limited situation — 1 CPU
// and 2 disks with the contended 1000-object database.
//
// Expected shapes: throughput rises, peaks, then falls/flattens for all
// three; blocking attains the global maximum (peak near mpl=25, disks ~97%
// utilized with ~92% useful); immediate-restart >= optimistic, and at
// mpl=200 immediate-restart is ahead thanks to its delay's mpl-limiting side
// effect (Fig 8). Useful utilization gaps show the restart algorithms' waste
// (Fig 9). Blocking has the lowest response time and the smallest standard
// deviation; immediate-restart the largest deviation (Fig 10).
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Experiment 3 — 1 CPU / 2 disks (db_size=1000), Figures 8-10", lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(1, 2);
  auto reports = bench::RunPaperSweep(base, lengths);

  ReportColumns throughput = ReportColumns::ThroughputOnly();
  throughput.avg_mpl = true;
  bench::EmitFigure("Figure 8: Throughput (1 CPU, 2 Disks)", "fig08", reports,
                    throughput);

  ReportColumns utils = ReportColumns::ThroughputOnly();
  utils.disk_util = true;
  bench::EmitFigure("Figure 9: Disk Utilization (1 CPU, 2 Disks)", "fig09",
                    reports, utils);

  ReportColumns response = ReportColumns::ThroughputOnly();
  response.response = true;
  bench::EmitFigure("Figure 10: Response Time (1 CPU, 2 Disks)", "fig10",
                    reports, response);
  return bench::BenchExitCode();
}
