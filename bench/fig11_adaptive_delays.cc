// Experiment 3b (Figure 11): adaptive restart delays for everyone.
//
// The restart delay that immediate-restart needs anyway also throttles the
// actual multiprogramming level under high contention. Adding the same
// adaptive delay to blocking and optimistic arrests their high-mpl collapse:
// blocking emerges the clear winner, and optimistic becomes comparable to
// immediate-restart. (The cost, per the paper, is a higher response-time
// standard deviation for blocking and optimistic — visible in the resp_sd
// column.)
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Experiment 3b — adaptive restart delays for all algorithms, Figure 11",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(1, 2);
  base.restart_delay_mode = RestartDelayMode::kAdaptive;
  auto reports = bench::RunPaperSweep(base, lengths);

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.response = true;  // Shows the added response-time variance.
  columns.avg_mpl = true;   // Shows the delay limiting the actual mpl.
  bench::EmitFigure("Figure 11: Throughput (Adaptive Delays, 1 CPU, 2 Disks)",
                    "fig11", reports, columns);
  return bench::BenchExitCode();
}
