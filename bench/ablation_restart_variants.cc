// Ablation: the full conflict-resolution spectrum — every implemented
// algorithm on the resource-limited configuration.
//
// Beyond the paper's three, the sweep includes: wound-wait and wait-die
// (timestamp-ordered locking, between pure blocking and pure restarts);
// basic and multiversion timestamp ordering (the [Gall82]/[Lin83]
// algorithms); forward-validating OCC (kills cheap in-flight work instead
// of completed work); and static 2PL (predeclared lock sets, zero
// restarts). Expected orderings: the blocking family on top at realistic
// utilization, static locking at or above dynamic blocking (no deadlock
// waste, at some concurrency cost), wait-die inheriting immediate-restart's
// delay-capped plateau, and the optimistic variants at the bottom under
// high mpl where their wasted re-execution is priced in disk time.
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — conflict-resolution spectrum: all nine algorithms "
      "(1 CPU / 2 disks)",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(1, 2);
  auto reports = bench::RunPaperSweep(base, lengths, AllAlgorithms());

  ReportColumns columns;
  columns.cpu_util = false;
  bench::EmitFigure("All algorithms (paper three + six extensions)",
                    "ablation_restart_variants", reports, columns);
  return bench::BenchExitCode();
}
