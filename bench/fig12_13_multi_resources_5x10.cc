// Experiment 4a (Figures 12, 13): multiple resources — 5 CPUs and 10 disks.
//
// Behavior resembles the 1x2 case: blocking still provides the best overall
// throughput, immediate-restart overtakes it only at large mpl. Total
// utilization for the restart-based algorithms exceeds blocking's (wasted,
// to-be-redone work); the paper reports maximum useful utilizations of
// 55.5% / 44.6% / 46.6% for blocking / immediate-restart / optimistic.
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner("Experiment 4a — 5 CPUs / 10 disks, Figures 12-13",
                     lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(5, 10);
  auto reports = bench::RunPaperSweep(base, lengths);

  ReportColumns throughput = ReportColumns::ThroughputOnly();
  throughput.avg_mpl = true;
  bench::EmitFigure("Figure 12: Throughput (5 CPUs, 10 Disks)", "fig12",
                    reports, throughput);

  ReportColumns utils = ReportColumns::ThroughputOnly();
  utils.disk_util = true;
  bench::EmitFigure("Figure 13: Disk Utilization (5 CPUs, 10 Disks)", "fig13",
                    reports, utils);
  return bench::BenchExitCode();
}
