// Ablation: read-only transaction mix.
//
// The paper's single-class workload writes each read object with probability
// 0.25. Real mixes contain a large read-only class (reports, browsing). As
// the read-only fraction grows, conflicts thin out and the algorithms
// converge — but they converge at different rates: the optimistic algorithm
// benefits first (read-only transactions can never fail validation against
// its read-set rule only when writers vanish), while blocking's shared locks
// were already cheap. Run at the contended point mpl=50, 1 CPU / 2 disks.
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — read-only mix sweep at mpl=50, 1 CPU / 2 disks", lengths);

  std::vector<bench::LabeledPoint> points;
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (const std::string& algorithm : PaperAlgorithms()) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.workload.mpl = 50;
      config.workload.read_only_fraction = fraction;
      config.algorithm = algorithm;
      points.push_back(
          {StringPrintf("ro=%.0f%% %s", fraction * 100, algorithm.c_str()),
           config});
    }
  }
  std::vector<MetricsReport> reports = bench::RunLabeledPoints(points, lengths);

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.ratios = true;
  columns.disk_util = true;
  bench::EmitFigure("Read-only mix sweep (algorithms converge as writers thin)",
                    "ablation_workload_mix", reports, columns);
  return bench::BenchExitCode();
}
