// Hot-path microbenchmarks — the BENCH_sim.json performance trajectory.
//
// Three benches, each isolating one layer of the engine's hot path:
//
//  1. event_churn — the simulator kernel alone, exercised with the engine's
//     dominant event pattern under blocking CC: schedule a completion plus a
//     far-future guard timeout, fire the completion, cancel the guard. The
//     cancel-heavy mix is what separates the pooled-arena kernel from a naive
//     one: cancelled far-future guards must not accumulate as live heap
//     tombstones (see docs/PERFORMANCE.md).
//  2. lock_grant_release — LockManager request/upgrade/release cycles with
//     no simulator in the loop (the lock-table cost of one transaction).
//  3. cc_decision — every concurrency control algorithm driven directly
//     (no simulator, no resource model) through a pinned contended workload;
//     decisions/second is the cost of one cc request on the dense-state hot
//     path, per algorithm.
//  4. end_to_end_fig03 — one real figure-3 point (blocking, low conflict,
//     infinite resources) through the standard checked runner; commits/sec
//     of simulated work per wall second is the whole-engine figure of merit.
//
// Output: a machine-readable JSON file (default ./BENCH_sim.json; override
// with argv[1] or CCSIM_BENCH_JSON). Schema documented in
// docs/PERFORMANCE.md; the committed repo-root BENCH_sim.json is the
// reference trajectory for this container class. Wall-clock rates vary by
// machine — compare runs on the same hardware; the *simulation outputs*
// (events fired, commits, digests) are deterministic and asserted nonzero.
//
// Statistical effort of the end-to-end point follows the usual env knobs
// (CCSIM_BATCHES, CCSIM_BATCH_SECONDS, CCSIM_WARMUP_SECONDS); the default
// here is short (2 batches x 2 s) because this is a perf smoke, not a
// figure reproduction.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "cc/factory.h"
#include "cc/lock_manager.h"
#include "sim/simulator.h"
#include "util/env.h"

namespace {

using ccsim::EngineConfig;
using ccsim::EventId;
using ccsim::LockManager;
using ccsim::LockMode;
using ccsim::MetricsReport;
using ccsim::ResourceConfig;
using ccsim::RunLengths;
using ccsim::Simulator;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ChurnResult {
  double events_per_sec = 0.0;     ///< Events scheduled per wall second.
  uint64_t events_fired = 0;       ///< Deterministic: kIters + drain.
  size_t peak_heap_entries = 0;    ///< Live + tombstones; bounded by compaction.
  uint64_t checksum = 0;           ///< Deterministic payload checksum.
};

/// The engine's blocking-CC timeout pattern: every lock grant schedules a
/// completion AND a deadlock-guard timeout ~3 orders of magnitude further
/// out, then cancels the guard when the completion fires first (it almost
/// always does). A kernel that leaks cancelled entries pays deep heap walks
/// over ~1000 dead guards; the arena kernel compacts and stays flat.
ChurnResult RunEventChurn(int iters) {
  ChurnResult result;
  // One warmup pass (arena/heap growth), one measured pass.
  for (int pass = 0; pass < 2; ++pass) {
    Simulator sim;
    uint64_t sink = 0;
    const uint64_t id = 7;
    const int inc = 3;
    const int64_t t = 11;
    size_t peak = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      sim.Schedule(1, [&sink, id, inc, t] {
        sink += id + static_cast<uint64_t>(inc) + static_cast<uint64_t>(t);
      });
      EventId guard = sim.Schedule(1000, [&sink, id] { sink += id; });
      sim.Step();
      sim.Cancel(guard);
      peak = std::max(peak, sim.heap_entries());
    }
    while (sim.Step()) {
    }
    const double secs = SecondsSince(t0);
    if (pass == 1) {
      result.events_per_sec = 2.0 * iters / secs;
      result.events_fired = sim.events_fired();
      result.peak_heap_entries = peak;
      result.checksum = sink;
    }
  }
  return result;
}

struct LockResult {
  double requests_per_sec = 0.0;
  int64_t immediate_grants = 0;  ///< Deterministic.
  int64_t deferred_grants = 0;   ///< Deterministic.
};

/// One transaction-shaped lock cycle: 8 shared acquisitions, 2 upgrades,
/// release-all — the paper's base workload shape (8 reads, 2 of them
/// written) — plus a second transaction queued behind the upgrades so every
/// ReleaseAll also exercises deferred grant processing.
LockResult RunLockGrantRelease(int iters) {
  LockResult result;
  for (int pass = 0; pass < 2; ++pass) {
    LockManager lm;
    lm.Reserve(/*num_objects=*/1024, /*num_txns=*/4);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const ccsim::ObjectId base =
          static_cast<ccsim::ObjectId>((i * 13) & 1023);
      for (int j = 0; j < 8; ++j) {
        lm.Request(1, (base + static_cast<ccsim::ObjectId>(j)) & 1023,
                   LockMode::kShared, /*enqueue_on_conflict=*/true);
      }
      lm.Request(1, base, LockMode::kExclusive, true);
      lm.Request(1, (base + 1) & 1023, LockMode::kExclusive, true);
      // A reader arrives behind the writer and must wait its turn.
      lm.Request(2, base, LockMode::kShared, true);
      lm.ReleaseAll(1);
      lm.ReleaseAll(2);
    }
    const double secs = SecondsSince(t0);
    if (pass == 1) {
      result.requests_per_sec = 11.0 * iters / secs;
      result.immediate_grants = lm.stats().immediate_grants;
      result.deferred_grants = lm.stats().deferred_grants;
    }
  }
  return result;
}

struct CcDecisionResult {
  std::string algorithm;
  double decisions_per_sec = 0.0;
  int64_t commits = 0;    ///< Deterministic at fixed budget.
  int64_t restarts = 0;   ///< Deterministic at fixed budget.
  bool stalled = false;   ///< No runnable txn and no pending grant: driver bug.
};

/// Drives one cc algorithm directly — no simulator, no resource model —
/// through a pinned contended workload: 8 concurrent transactions over 64
/// objects, each reading 6 and upgrading 2 to writes (the paper's access
/// shape, compressed onto a hot object space). Round-robin visits play the
/// engine's state machine per transaction: predeclare (if required), reads,
/// write upgrades, validate, then commit on a later visit (so optimistic
/// flush claims stay live across other transactions' steps, as they do under
/// the real engine). Blocked transactions re-issue the same request after an
/// on_granted callback; kRestart and wounds abort and replay the same spec
/// under the same id (new incarnation, stable first_start), exactly the
/// engine's restart semantics. Decisions = Predeclare + ReadRequest +
/// WriteRequest + Validate calls; the measured rate is the per-request cost
/// of the dense-state cc hot path.
class CcDecisionDriver {
 public:
  static constexpr int kTxns = 8;
  static constexpr int64_t kObjects = 64;
  static constexpr int kReads = 6;
  static constexpr int kWrites = 2;  ///< First kWrites read objects upgraded.

  explicit CcDecisionDriver(const std::string& name)
      : cc_(ccsim::MakeConcurrencyControl(name)) {
    cc_->ReserveCapacity(kObjects, kTxns);
    ccsim::CCCallbacks callbacks;
    callbacks.on_granted = [this](ccsim::TxnId id) { granted_.push_back(id); };
    callbacks.on_wound = [this](ccsim::TxnId id) {
      int slot = SlotOf(id);
      if (slot >= 0) txns_[static_cast<size_t>(slot)].doomed = true;
    };
    callbacks.now = [this] { return clock_; };
    cc_->SetCallbacks(std::move(callbacks));
    for (int slot = 0; slot < kTxns; ++slot) BeginFresh(slot);
  }

  /// Issues exactly `budget` cc decisions (unless stalled) and returns the
  /// deterministic commit/restart tallies. Rate is filled in by the caller.
  CcDecisionResult Run(int64_t budget) {
    CcDecisionResult result;
    int64_t decisions = 0;
    int idle_sweeps = 0;
    while (decisions < budget) {
      bool progressed = !granted_.empty();
      DrainGrants();
      for (int slot = 0; slot < kTxns && decisions < budget; ++slot) {
        DriverTxn& t = txns_[static_cast<size_t>(slot)];
        if (t.doomed) {
          Restart(slot);
          progressed = true;
          continue;
        }
        if (t.backoff > 0) {
          --t.backoff;
          progressed = true;
          continue;
        }
        if (t.blocked) continue;
        progressed = true;
        ++clock_;
        if (t.step == kCommitStep) {
          // Not a cc decision: commit work was priced by Validate.
          cc_->Commit(t.id);
          ++commits_;
          BeginFresh(slot);
          continue;
        }
        ++decisions;
        if (t.step == kValidateStep) {
          if (cc_->Validate(t.id)) {
            t.step = kCommitStep;
          } else {
            Restart(slot);
          }
          continue;
        }
        ccsim::CCDecision d;
        if (t.step == kPredeclareStep) {
          reads_scratch_.assign(t.objs.begin(), t.objs.end());
          writes_scratch_.assign(t.objs.begin(), t.objs.begin() + kWrites);
          d = cc_->Predeclare(t.id, reads_scratch_, writes_scratch_);
        } else if (t.step < kReads) {
          d = cc_->ReadRequest(t.id, t.objs[static_cast<size_t>(t.step)]);
        } else {
          d = cc_->WriteRequest(
              t.id, t.objs[static_cast<size_t>(t.step - kReads)]);
        }
        if (t.doomed) {  // Wounded synchronously by our own request.
          Restart(slot);
          continue;
        }
        switch (d) {
          case ccsim::CCDecision::kGranted:
            // A granted predeclaration starts execution at the first read.
            t.step = (t.step == kPredeclareStep) ? 0 : t.step + 1;
            break;
          case ccsim::CCDecision::kBlocked:
            // on_granted later re-issues this same request (engine semantics).
            t.blocked = true;
            break;
          case ccsim::CCDecision::kRestart:
            Restart(slot);
            break;
        }
      }
      if (progressed) {
        idle_sweeps = 0;
      } else if (++idle_sweeps > 16) {
        // Everyone blocked with no grant in flight: unrecoverable (the real
        // engine would be stuck too). Surface as an invalid zero-rate result.
        result.stalled = true;
        break;
      }
    }
    result.commits = commits_;
    result.restarts = restarts_;
    return result;
  }

 private:
  static constexpr int kPredeclareStep = -1;
  static constexpr int kValidateStep = kReads + kWrites;
  static constexpr int kCommitStep = kValidateStep + 1;

  struct DriverTxn {
    ccsim::TxnId id = ccsim::kInvalidTxn;
    ccsim::SimTime first_start = 0;  ///< Stable across restarts.
    int step = 0;
    int backoff = 0;  ///< Sweeps to sit out after a restart (restart delay).
    bool blocked = false;
    bool doomed = false;
    std::vector<ccsim::ObjectId> objs;  ///< kReads objects; first kWrites written.
  };

  /// Deterministic per-id access set (splitmix64 stream): the same id always
  /// replays the same objects, so restarts re-run the same spec.
  static void BuildSpec(ccsim::TxnId id, std::vector<ccsim::ObjectId>* objs) {
    objs->clear();
    uint64_t x = static_cast<uint64_t>(id);
    while (objs->size() < static_cast<size_t>(kReads)) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      auto obj = static_cast<ccsim::ObjectId>(
          z % static_cast<uint64_t>(kObjects));
      if (std::find(objs->begin(), objs->end(), obj) == objs->end()) {
        objs->push_back(obj);
      }
    }
  }

  int SlotOf(ccsim::TxnId id) const {
    for (int slot = 0; slot < kTxns; ++slot) {
      if (txns_[static_cast<size_t>(slot)].id == id) return slot;
    }
    return -1;
  }

  void DrainGrants() {
    for (ccsim::TxnId id : granted_) {
      int slot = SlotOf(id);
      if (slot < 0) continue;  // Grant raced a wound-restart; already moot.
      DriverTxn& t = txns_[static_cast<size_t>(slot)];
      t.blocked = false;
      // A granted predeclaration resumes at the first read — never
      // re-predeclares (engine semantics; the locks are already held).
      if (t.step == kPredeclareStep) t.step = 0;
    }
    granted_.clear();
  }

  /// Fresh transaction in `slot`: new id, new spec, first incarnation.
  void BeginFresh(int slot) {
    DriverTxn& t = txns_[static_cast<size_t>(slot)];
    t.id = next_id_++;
    t.first_start = ++clock_;
    t.blocked = false;
    t.doomed = false;
    BuildSpec(t.id, &t.objs);
    t.step = cc_->needs_predeclaration() ? kPredeclareStep : 0;
    cc_->OnBegin(t.id, t.first_start, t.first_start);
  }

  /// Aborts the current incarnation and replays the same transaction: same
  /// id, same spec, same first_start, fresh incarnation_start. The restarted
  /// transaction sits out 16 sweeps — a restart delay long enough for its
  /// opponent to finish (the engine's adaptive-delay semantics); without it,
  /// immediate-restart and T/O would livelock against the round-robin.
  void Restart(int slot) {
    DriverTxn& t = txns_[static_cast<size_t>(slot)];
    cc_->Abort(t.id);
    ++restarts_;
    t.blocked = false;
    t.doomed = false;
    t.backoff = 16;
    t.step = cc_->needs_predeclaration() ? kPredeclareStep : 0;
    cc_->OnBegin(t.id, t.first_start, ++clock_);
  }

  std::unique_ptr<ccsim::ConcurrencyControl> cc_;
  std::array<DriverTxn, kTxns> txns_;
  std::vector<ccsim::TxnId> granted_;
  std::vector<ccsim::ObjectId> reads_scratch_;
  std::vector<ccsim::ObjectId> writes_scratch_;
  ccsim::SimTime clock_ = 0;
  ccsim::TxnId next_id_ = 1;
  int64_t commits_ = 0;
  int64_t restarts_ = 0;
};

/// One warmup pass plus one measured pass per algorithm, fresh driver each
/// (the measured pass prices steady-state decisions on warmed code paths;
/// the tallies are deterministic and asserted nonzero).
std::vector<CcDecisionResult> RunCcDecision(int64_t budget) {
  std::vector<CcDecisionResult> results;
  for (const std::string& name : ccsim::AllAlgorithms()) {
    CcDecisionResult measured;
    for (int pass = 0; pass < 2; ++pass) {
      CcDecisionDriver driver(name);
      const auto t0 = std::chrono::steady_clock::now();
      CcDecisionResult r = driver.Run(budget);
      const double secs = SecondsSince(t0);
      if (pass == 1) {
        measured = r;
        measured.algorithm = name;
        measured.decisions_per_sec =
            (r.stalled || secs <= 0.0) ? 0.0 : budget / secs;
      }
    }
    results.push_back(measured);
  }
  return results;
}

struct EndToEndResult {
  bool ok = false;
  int mpl = 0;
  double throughput = 0.0;        ///< Committed txns per simulated second.
  int64_t commits = 0;            ///< Deterministic at fixed seed/lengths.
  uint64_t replay_digest = 0;     ///< Deterministic at fixed seed/lengths.
  double wall_seconds = 0.0;
  double commits_per_wall_sec = 0.0;
};

/// One figure-3 point through the full checked engine: blocking CC,
/// db_size=10000 (low conflict), infinite resources, mpl=50.
EndToEndResult RunEndToEnd(const RunLengths& lengths) {
  EndToEndResult result;
  EngineConfig config = ccsim::bench::PaperBaseConfig();
  config.workload.db_size = 10000;
  config.resources = ResourceConfig::Infinite();
  config.algorithm = "blocking";
  config.workload.mpl = 50;
  // Audit on: the replay digest in the JSON is then a deterministic anchor —
  // two builds at the same seed and lengths must report the same value.
  config.audit = true;
  result.mpl = config.workload.mpl;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<MetricsReport> reports = ccsim::bench::RunLabeledPoints(
      {{"fig03 blocking mpl=50", config}}, lengths);
  result.wall_seconds = SecondsSince(t0);
  if (reports.size() != 1) return result;  // Point failed; reported on stderr.
  const MetricsReport& r = reports[0];
  result.ok = true;
  result.throughput = r.throughput.mean;
  result.commits = r.commits;
  result.replay_digest = r.replay_digest;
  result.commits_per_wall_sec =
      result.wall_seconds > 0.0 ? r.commits / result.wall_seconds : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path =
      ccsim::GetEnv("CCSIM_BENCH_JSON").value_or("BENCH_sim.json");
  if (argc > 1) out_path = argv[1];

  RunLengths lengths = ccsim::bench::BenchLengths(/*batch_seconds=*/2.0,
                                                  /*warmup_seconds=*/2.0);
  ccsim::bench::PrintBanner("Hot-path microbenchmarks (BENCH_sim.json)",
                            lengths);

  const int churn_iters = 2000000;
  std::cerr << "[micro_kernel] event_churn (" << churn_iters
            << " timeout-pattern iterations)...\n";
  ChurnResult churn = RunEventChurn(churn_iters);
  std::cerr << "[micro_kernel]   " << static_cast<int64_t>(churn.events_per_sec)
            << " events/sec, peak heap " << churn.peak_heap_entries << "\n";

  const int lock_iters = 500000;
  std::cerr << "[micro_kernel] lock_grant_release (" << lock_iters
            << " transaction cycles)...\n";
  LockResult lock = RunLockGrantRelease(lock_iters);
  std::cerr << "[micro_kernel]   "
            << static_cast<int64_t>(lock.requests_per_sec)
            << " lock requests/sec\n";

  const int64_t decision_budget = 200000;
  std::cerr << "[micro_kernel] cc_decision (" << decision_budget
            << " decisions x " << ccsim::AllAlgorithms().size()
            << " algorithms)...\n";
  std::vector<CcDecisionResult> decisions = RunCcDecision(decision_budget);
  for (const CcDecisionResult& r : decisions) {
    std::cerr << "[micro_kernel]   " << r.algorithm << ": "
              << static_cast<int64_t>(r.decisions_per_sec)
              << " decisions/sec, " << r.commits << " commits, " << r.restarts
              << " restarts" << (r.stalled ? " (STALLED)" : "") << "\n";
  }

  std::cerr << "[micro_kernel] end_to_end_fig03 (blocking, mpl=50)...\n";
  EndToEndResult e2e = RunEndToEnd(lengths);

  // Hard validity checks: a zero anywhere means the bench silently broke.
  bool valid = churn.events_per_sec > 0.0 && churn.events_fired > 0 &&
               churn.peak_heap_entries > 0 && lock.requests_per_sec > 0.0 &&
               lock.immediate_grants > 0 && lock.deferred_grants > 0 &&
               e2e.ok && e2e.commits > 0 && e2e.throughput > 0.0 &&
               e2e.replay_digest != 0;
  valid = valid && decisions.size() == ccsim::AllAlgorithms().size();
  for (const CcDecisionResult& r : decisions) {
    valid = valid && !r.stalled && r.decisions_per_sec > 0.0 && r.commits > 0;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "[micro_kernel] FAILED to open " << out_path << "\n";
    return 1;
  }
  // cc_decision section: one entry per algorithm, composed separately (nine
  // entries overflow a comfortable single format string).
  std::string cc_json;
  for (size_t i = 0; i < decisions.size(); ++i) {
    const CcDecisionResult& r = decisions[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": { \"decisions_per_sec\": %.0f, "
                  "\"commits\": %lld, \"restarts\": %lld }%s\n",
                  r.algorithm.c_str(), r.decisions_per_sec,
                  static_cast<long long>(r.commits),
                  static_cast<long long>(r.restarts),
                  i + 1 < decisions.size() ? "," : "");
    cc_json += line;
  }
  char buf[8192];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"schema\": \"ccsim-bench-v1\",\n"
      "  \"event_churn\": {\n"
      "    \"iterations\": %d,\n"
      "    \"events_per_sec\": %.0f,\n"
      "    \"events_fired\": %llu,\n"
      "    \"peak_heap_entries\": %zu,\n"
      "    \"checksum\": %llu\n"
      "  },\n"
      "  \"lock_grant_release\": {\n"
      "    \"iterations\": %d,\n"
      "    \"requests_per_sec\": %.0f,\n"
      "    \"immediate_grants\": %lld,\n"
      "    \"deferred_grants\": %lld\n"
      "  },\n"
      "  \"cc_decision\": {\n"
      "    \"budget\": %lld,\n"
      "%s"
      "  },\n"
      "  \"end_to_end_fig03\": {\n"
      "    \"algorithm\": \"blocking\",\n"
      "    \"mpl\": %d,\n"
      "    \"batches\": %d,\n"
      "    \"throughput_txn_per_sim_sec\": %.4f,\n"
      "    \"commits\": %lld,\n"
      "    \"replay_digest\": \"%016llx\",\n"
      "    \"wall_seconds\": %.2f,\n"
      "    \"commits_per_wall_sec\": %.0f\n"
      "  }\n"
      "}\n",
      churn_iters, churn.events_per_sec,
      static_cast<unsigned long long>(churn.events_fired),
      churn.peak_heap_entries,
      static_cast<unsigned long long>(churn.checksum), lock_iters,
      lock.requests_per_sec, static_cast<long long>(lock.immediate_grants),
      static_cast<long long>(lock.deferred_grants),
      static_cast<long long>(decision_budget), cc_json.c_str(), e2e.mpl,
      lengths.batches,
      e2e.throughput, static_cast<long long>(e2e.commits),
      static_cast<unsigned long long>(e2e.replay_digest), e2e.wall_seconds,
      e2e.commits_per_wall_sec);
  out << buf;
  out.close();
  std::cerr << "[micro_kernel] wrote " << out_path
            << (valid ? "" : " (INVALID: zero metric)") << "\n";
  return valid && ccsim::bench::BenchExitCode() == 0 ? 0 : 1;
}
