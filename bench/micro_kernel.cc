// Hot-path microbenchmarks — the BENCH_sim.json performance trajectory.
//
// Three benches, each isolating one layer of the engine's hot path:
//
//  1. event_churn — the simulator kernel alone, exercised with the engine's
//     dominant event pattern under blocking CC: schedule a completion plus a
//     far-future guard timeout, fire the completion, cancel the guard. The
//     cancel-heavy mix is what separates the pooled-arena kernel from a naive
//     one: cancelled far-future guards must not accumulate as live heap
//     tombstones (see docs/PERFORMANCE.md).
//  2. lock_grant_release — LockManager request/upgrade/release cycles with
//     no simulator in the loop (the lock-table cost of one transaction).
//  3. end_to_end_fig03 — one real figure-3 point (blocking, low conflict,
//     infinite resources) through the standard checked runner; commits/sec
//     of simulated work per wall second is the whole-engine figure of merit.
//
// Output: a machine-readable JSON file (default ./BENCH_sim.json; override
// with argv[1] or CCSIM_BENCH_JSON). Schema documented in
// docs/PERFORMANCE.md; the committed repo-root BENCH_sim.json is the
// reference trajectory for this container class. Wall-clock rates vary by
// machine — compare runs on the same hardware; the *simulation outputs*
// (events fired, commits, digests) are deterministic and asserted nonzero.
//
// Statistical effort of the end-to-end point follows the usual env knobs
// (CCSIM_BATCHES, CCSIM_BATCH_SECONDS, CCSIM_WARMUP_SECONDS); the default
// here is short (2 batches x 2 s) because this is a perf smoke, not a
// figure reproduction.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "cc/lock_manager.h"
#include "sim/simulator.h"
#include "util/env.h"

namespace {

using ccsim::EngineConfig;
using ccsim::EventId;
using ccsim::LockManager;
using ccsim::LockMode;
using ccsim::MetricsReport;
using ccsim::ResourceConfig;
using ccsim::RunLengths;
using ccsim::Simulator;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ChurnResult {
  double events_per_sec = 0.0;     ///< Events scheduled per wall second.
  uint64_t events_fired = 0;       ///< Deterministic: kIters + drain.
  size_t peak_heap_entries = 0;    ///< Live + tombstones; bounded by compaction.
  uint64_t checksum = 0;           ///< Deterministic payload checksum.
};

/// The engine's blocking-CC timeout pattern: every lock grant schedules a
/// completion AND a deadlock-guard timeout ~3 orders of magnitude further
/// out, then cancels the guard when the completion fires first (it almost
/// always does). A kernel that leaks cancelled entries pays deep heap walks
/// over ~1000 dead guards; the arena kernel compacts and stays flat.
ChurnResult RunEventChurn(int iters) {
  ChurnResult result;
  // One warmup pass (arena/heap growth), one measured pass.
  for (int pass = 0; pass < 2; ++pass) {
    Simulator sim;
    uint64_t sink = 0;
    const uint64_t id = 7;
    const int inc = 3;
    const int64_t t = 11;
    size_t peak = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      sim.Schedule(1, [&sink, id, inc, t] {
        sink += id + static_cast<uint64_t>(inc) + static_cast<uint64_t>(t);
      });
      EventId guard = sim.Schedule(1000, [&sink, id] { sink += id; });
      sim.Step();
      sim.Cancel(guard);
      peak = std::max(peak, sim.heap_entries());
    }
    while (sim.Step()) {
    }
    const double secs = SecondsSince(t0);
    if (pass == 1) {
      result.events_per_sec = 2.0 * iters / secs;
      result.events_fired = sim.events_fired();
      result.peak_heap_entries = peak;
      result.checksum = sink;
    }
  }
  return result;
}

struct LockResult {
  double requests_per_sec = 0.0;
  int64_t immediate_grants = 0;  ///< Deterministic.
  int64_t deferred_grants = 0;   ///< Deterministic.
};

/// One transaction-shaped lock cycle: 8 shared acquisitions, 2 upgrades,
/// release-all — the paper's base workload shape (8 reads, 2 of them
/// written) — plus a second transaction queued behind the upgrades so every
/// ReleaseAll also exercises deferred grant processing.
LockResult RunLockGrantRelease(int iters) {
  LockResult result;
  for (int pass = 0; pass < 2; ++pass) {
    LockManager lm;
    lm.Reserve(/*num_objects=*/1024, /*num_txns=*/4);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const ccsim::ObjectId base =
          static_cast<ccsim::ObjectId>((i * 13) & 1023);
      for (int j = 0; j < 8; ++j) {
        lm.Request(1, (base + static_cast<ccsim::ObjectId>(j)) & 1023,
                   LockMode::kShared, /*enqueue_on_conflict=*/true);
      }
      lm.Request(1, base, LockMode::kExclusive, true);
      lm.Request(1, (base + 1) & 1023, LockMode::kExclusive, true);
      // A reader arrives behind the writer and must wait its turn.
      lm.Request(2, base, LockMode::kShared, true);
      lm.ReleaseAll(1);
      lm.ReleaseAll(2);
    }
    const double secs = SecondsSince(t0);
    if (pass == 1) {
      result.requests_per_sec = 11.0 * iters / secs;
      result.immediate_grants = lm.stats().immediate_grants;
      result.deferred_grants = lm.stats().deferred_grants;
    }
  }
  return result;
}

struct EndToEndResult {
  bool ok = false;
  int mpl = 0;
  double throughput = 0.0;        ///< Committed txns per simulated second.
  int64_t commits = 0;            ///< Deterministic at fixed seed/lengths.
  uint64_t replay_digest = 0;     ///< Deterministic at fixed seed/lengths.
  double wall_seconds = 0.0;
  double commits_per_wall_sec = 0.0;
};

/// One figure-3 point through the full checked engine: blocking CC,
/// db_size=10000 (low conflict), infinite resources, mpl=50.
EndToEndResult RunEndToEnd(const RunLengths& lengths) {
  EndToEndResult result;
  EngineConfig config = ccsim::bench::PaperBaseConfig();
  config.workload.db_size = 10000;
  config.resources = ResourceConfig::Infinite();
  config.algorithm = "blocking";
  config.workload.mpl = 50;
  // Audit on: the replay digest in the JSON is then a deterministic anchor —
  // two builds at the same seed and lengths must report the same value.
  config.audit = true;
  result.mpl = config.workload.mpl;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<MetricsReport> reports = ccsim::bench::RunLabeledPoints(
      {{"fig03 blocking mpl=50", config}}, lengths);
  result.wall_seconds = SecondsSince(t0);
  if (reports.size() != 1) return result;  // Point failed; reported on stderr.
  const MetricsReport& r = reports[0];
  result.ok = true;
  result.throughput = r.throughput.mean;
  result.commits = r.commits;
  result.replay_digest = r.replay_digest;
  result.commits_per_wall_sec =
      result.wall_seconds > 0.0 ? r.commits / result.wall_seconds : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path =
      ccsim::GetEnv("CCSIM_BENCH_JSON").value_or("BENCH_sim.json");
  if (argc > 1) out_path = argv[1];

  RunLengths lengths = ccsim::bench::BenchLengths(/*batch_seconds=*/2.0,
                                                  /*warmup_seconds=*/2.0);
  ccsim::bench::PrintBanner("Hot-path microbenchmarks (BENCH_sim.json)",
                            lengths);

  const int churn_iters = 2000000;
  std::cerr << "[micro_kernel] event_churn (" << churn_iters
            << " timeout-pattern iterations)...\n";
  ChurnResult churn = RunEventChurn(churn_iters);
  std::cerr << "[micro_kernel]   " << static_cast<int64_t>(churn.events_per_sec)
            << " events/sec, peak heap " << churn.peak_heap_entries << "\n";

  const int lock_iters = 500000;
  std::cerr << "[micro_kernel] lock_grant_release (" << lock_iters
            << " transaction cycles)...\n";
  LockResult lock = RunLockGrantRelease(lock_iters);
  std::cerr << "[micro_kernel]   "
            << static_cast<int64_t>(lock.requests_per_sec)
            << " lock requests/sec\n";

  std::cerr << "[micro_kernel] end_to_end_fig03 (blocking, mpl=50)...\n";
  EndToEndResult e2e = RunEndToEnd(lengths);

  // Hard validity checks: a zero anywhere means the bench silently broke.
  bool valid = churn.events_per_sec > 0.0 && churn.events_fired > 0 &&
               churn.peak_heap_entries > 0 && lock.requests_per_sec > 0.0 &&
               lock.immediate_grants > 0 && lock.deferred_grants > 0 &&
               e2e.ok && e2e.commits > 0 && e2e.throughput > 0.0 &&
               e2e.replay_digest != 0;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "[micro_kernel] FAILED to open " << out_path << "\n";
    return 1;
  }
  char buf[4096];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"schema\": \"ccsim-bench-v1\",\n"
      "  \"event_churn\": {\n"
      "    \"iterations\": %d,\n"
      "    \"events_per_sec\": %.0f,\n"
      "    \"events_fired\": %llu,\n"
      "    \"peak_heap_entries\": %zu,\n"
      "    \"checksum\": %llu\n"
      "  },\n"
      "  \"lock_grant_release\": {\n"
      "    \"iterations\": %d,\n"
      "    \"requests_per_sec\": %.0f,\n"
      "    \"immediate_grants\": %lld,\n"
      "    \"deferred_grants\": %lld\n"
      "  },\n"
      "  \"end_to_end_fig03\": {\n"
      "    \"algorithm\": \"blocking\",\n"
      "    \"mpl\": %d,\n"
      "    \"batches\": %d,\n"
      "    \"throughput_txn_per_sim_sec\": %.4f,\n"
      "    \"commits\": %lld,\n"
      "    \"replay_digest\": \"%016llx\",\n"
      "    \"wall_seconds\": %.2f,\n"
      "    \"commits_per_wall_sec\": %.0f\n"
      "  }\n"
      "}\n",
      churn_iters, churn.events_per_sec,
      static_cast<unsigned long long>(churn.events_fired),
      churn.peak_heap_entries,
      static_cast<unsigned long long>(churn.checksum), lock_iters,
      lock.requests_per_sec, static_cast<long long>(lock.immediate_grants),
      static_cast<long long>(lock.deferred_grants), e2e.mpl, lengths.batches,
      e2e.throughput, static_cast<long long>(e2e.commits),
      static_cast<unsigned long long>(e2e.replay_digest), e2e.wall_seconds,
      e2e.commits_per_wall_sec);
  out << buf;
  out.close();
  std::cerr << "[micro_kernel] wrote " << out_path
            << (valid ? "" : " (INVALID: zero metric)") << "\n";
  return valid && ccsim::bench::BenchExitCode() == 0 ? 0 : 1;
}
