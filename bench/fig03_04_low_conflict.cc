// Experiment 1 (Figures 3 and 4): the low-conflict situation.
//
// A 10,000-object database makes conflicts rare; the three algorithms should
// perform nearly identically, with blocking ahead by a small margin — both
// under infinite resources (Figure 3) and with 1 CPU / 2 disks (Figure 4).
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Experiment 1 — low conflicts (db_size=10000), Figures 3-4", lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.workload.db_size = 10000;

  EngineConfig infinite = base;
  infinite.resources = ResourceConfig::Infinite();
  auto fig3 = bench::RunPaperSweep(infinite, lengths);
  ReportColumns columns;
  columns.disk_util = false;  // Meaningless under infinite resources.
  bench::EmitFigure("Figure 3: Throughput (Infinite Resources, low conflict)",
                    "fig03", fig3, columns);

  EngineConfig finite = base;
  finite.resources = ResourceConfig::Finite(1, 2);
  auto fig4 = bench::RunPaperSweep(finite, lengths);
  bench::EmitFigure("Figure 4: Throughput (1 CPU, 2 Disks, low conflict)",
                    "fig04", fig4, ReportColumns());
  return bench::BenchExitCode();
}
