// Ablation: locking granularity — the Ries–Stonebraker tradeoff, run on the
// model that descends from their simulator.
//
// Objects are grouped into granules; one cc request covers a granule. With a
// per-request CPU cost (cc_cpu = 1 ms here — the paper assumes 0), coarse
// granules save overhead but manufacture false conflicts. Ries and
// Stonebraker's classic finding: surprisingly coarse granularity is fine
// unless concurrency is actually needed — visible here as the granule size
// where each algorithm's throughput rolls off, and how that point moves
// between a lightly loaded and a contended system.
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — locking granularity (blocking, cc_cpu=1ms, 1 CPU / 2 disks)",
      lengths);

  const int granules[] = {1, 5, 20, 100, 500, 1000};

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.ratios = true;
  columns.response = true;

  // Side A: the paper's contended update workload — small random
  // transactions share almost no granules, so coarsening buys nothing and
  // manufactures false conflicts. Fine granularity wins.
  for (int mpl : {10, 100}) {
    std::vector<bench::LabeledPoint> points;
    for (int granule : granules) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.workload.mpl = mpl;
      config.workload.cc_cpu = FromMillis(1);
      config.algorithm = "blocking";
      config.lock_granule_size = granule;
      points.push_back({StringPrintf("%4d obj/granule", granule), config});
    }
    std::vector<MetricsReport> reports =
        bench::RunLabeledPoints(points, lengths);
    bench::EmitFigure(
        StringPrintf("Granularity sweep, update workload, mpl=%d (db=1000)",
                     mpl),
        StringPrintf("ablation_granularity_mpl%d", mpl), reports, columns);
  }

  // Side B: read-only scans (mean 32 of 10000 pages) with a real
  // per-request cost — scans share granules, coarse locking halves the cc
  // overhead, and shared locks never conflict. Coarse granularity wins:
  // Ries & Stonebraker's surprise. (Even 5% writers flip this verdict: an
  // exclusive lock on a 1000-page granule serializes every scan that
  // touches it — which is why mixed workloads want multiple granularities
  // or intention locks, a refinement outside this model.)
  {
    std::vector<bench::LabeledPoint> points;
    for (int granule : {1, 100, 1000, 2500}) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.workload.db_size = 10000;
      config.workload.tran_size = 32;
      config.workload.min_size = 16;
      config.workload.max_size = 48;
      config.workload.write_prob = 0.0;
      config.workload.mpl = 20;
      config.workload.cc_cpu = FromMillis(5);
      config.algorithm = "blocking";
      config.lock_granule_size = granule;
      points.push_back({StringPrintf("%4d obj/granule", granule), config});
    }
    std::vector<MetricsReport> reports =
        bench::RunLabeledPoints(points, lengths);
    bench::EmitFigure(
        "Granularity sweep, scan workload (coarse wins on overhead)",
        "ablation_granularity_scans", reports, columns);
  }
  return bench::BenchExitCode();
}
