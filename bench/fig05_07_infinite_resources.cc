// Experiment 2 (Figures 5, 6, 7): infinite resources with the contended
// 1000-object database.
//
// Expected shapes: blocking thrashes beyond a knee while optimistic keeps
// climbing and immediate-restart plateaus (Fig 5); blocking's *block* ratio
// explodes while restart ratios drive the other two (Fig 6);
// immediate-restart shows the largest response-time standard deviation
// (Fig 7).
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Experiment 2 — infinite resources (db_size=1000), Figures 5-7",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Infinite();
  auto reports = bench::RunPaperSweep(base, lengths);

  ReportColumns throughput = ReportColumns::ThroughputOnly();
  throughput.avg_mpl = true;
  bench::EmitFigure("Figure 5: Throughput (Infinite Resources)", "fig05",
                    reports, throughput);

  ReportColumns ratios = ReportColumns::ThroughputOnly();
  ratios.ratios = true;
  bench::EmitFigure("Figure 6: Conflict Ratios (Infinite Resources)", "fig06",
                    reports, ratios);

  ReportColumns response = ReportColumns::ThroughputOnly();
  response.response = true;
  bench::EmitFigure("Figure 7: Response Time (Infinite Resources)", "fig07",
                    reports, response);
  return bench::BenchExitCode();
}
