// Ablation: access skew (the x-y rule) vs the paper's uniform model.
//
// The paper samples readsets uniformly from the database; real workloads
// concentrate on hot data. Skew raises the *effective* conflict rate without
// changing db_size, so it shifts every curve left: blocking starts thrashing
// at lower mpl and the restart algorithms pay more per restart. This bench
// holds the Table 2 workload and 1 CPU / 2 disks fixed at mpl=25 (blocking's
// uniform-case peak) and sweeps the skew.
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — access skew (x-y rule) at mpl=25, 1 CPU / 2 disks", lengths);

  struct Skew {
    double hot_db, hot_prob;
    const char* label;
  };
  const Skew skews[] = {
      {0.0, 0.0, "uniform (paper)"},
      {0.5, 0.5, "50-50 (=uniform)"},
      {0.2, 0.8, "80-20"},
      {0.1, 0.9, "90-10"},
      {0.05, 0.95, "95-5"},
  };

  std::vector<bench::LabeledPoint> points;
  for (const Skew& skew : skews) {
    for (const std::string& algorithm : PaperAlgorithms()) {
      EngineConfig config = bench::PaperBaseConfig();
      config.resources = ResourceConfig::Finite(1, 2);
      config.workload.mpl = 25;
      config.workload.hot_fraction_db = skew.hot_db;
      config.workload.hot_access_prob = skew.hot_prob;
      config.algorithm = algorithm;
      points.push_back(
          {StringPrintf("%s %s", skew.label, algorithm.c_str()), config});
    }
  }
  std::vector<MetricsReport> reports = bench::RunLabeledPoints(points, lengths);

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.ratios = true;
  columns.disk_util = true;
  bench::EmitFigure("Skew sweep (conflict ratios climb as skew sharpens)",
                    "ablation_hotspot", reports, columns);
  return bench::BenchExitCode();
}
