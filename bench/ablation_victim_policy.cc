// Ablation: deadlock victim selection policy for the blocking algorithm.
//
// The paper restarts the *youngest* transaction in the cycle. This bench
// compares youngest vs oldest vs fewest-locks under the contended Table 2
// workload (1 CPU / 2 disks) across the mpl sweep. Youngest should waste the
// least completed work; oldest violates that intuition and fewest-locks
// approximates cheapest-to-redo.
#include <iostream>

#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — deadlock victim policy (blocking, 1 CPU / 2 disks)",
      lengths);

  struct Policy {
    VictimPolicy policy;
    const char* label;
  };
  const Policy policies[] = {
      {VictimPolicy::kYoungest, "youngest (paper)"},
      {VictimPolicy::kOldest, "oldest"},
      {VictimPolicy::kFewestLocks, "fewest_locks"},
  };

  std::vector<MetricsReport> reports;
  for (const Policy& p : policies) {
    EngineConfig base = bench::PaperBaseConfig();
    base.resources = ResourceConfig::Finite(1, 2);
    base.algorithm = "blocking";
    base.victim_policy = p.policy;
    SweepConfig sweep;
    sweep.base = base;
    sweep.algorithms = {"blocking"};
    sweep.mpls = PaperMplLevels();
    sweep.lengths = lengths;
    auto policy_reports = RunSweep(sweep, [&](const MetricsReport& r) {
      std::cerr << "  " << p.label << " mpl=" << r.mpl << " thruput="
                << r.throughput.mean << "\n";
    });
    for (MetricsReport& r : policy_reports) {
      r.algorithm = p.label;
      reports.push_back(r);
    }
  }

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.ratios = true;
  columns.response = true;
  bench::EmitFigure("Victim policy comparison (blocking)",
                    "ablation_victim_policy", reports, columns);
  return bench::BenchExitCode();
}
