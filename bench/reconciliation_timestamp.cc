// Reconciliation study: locking vs. basic timestamp ordering vs.
// multiversion timestamp ordering, under both resource assumptions.
//
// The paper's motivation includes two contradictory studies built on exactly
// these algorithms: [Gall82] compared locking with basic T/O, and [Lin83]
// compared locking with basic and multiversion T/O — and they disagreed.
// The paper's thesis predicts the disagreement dissolves once the resource
// model is made explicit: under infinite resources the restart-prone T/O
// algorithms can exploit unlimited concurrency (and MVTO's read-never-blocks
// property shines), while with 1 CPU / 2 disks the wasted re-execution makes
// conservative blocking the winner. This bench runs both tables so the
// reversal is visible in one place.
#include "bench/harness.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Reconciliation — blocking vs basic T/O vs multiversion T/O under both "
      "resource models",
      lengths);

  const std::vector<std::string> algorithms = {"blocking", "basic_to", "mvto"};

  EngineConfig infinite = bench::PaperBaseConfig();
  infinite.resources = ResourceConfig::Infinite();
  auto inf_reports = bench::RunPaperSweep(infinite, lengths, algorithms);
  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.ratios = true;
  columns.avg_mpl = true;
  bench::EmitFigure(
      "Infinite resources (the [Lin83]-style assumption): T/O can win",
      "reconciliation_infinite", inf_reports, columns);

  EngineConfig finite = bench::PaperBaseConfig();
  finite.resources = ResourceConfig::Finite(1, 2);
  auto fin_reports = bench::RunPaperSweep(finite, lengths, algorithms);
  ReportColumns fin_columns;
  bench::EmitFigure(
      "1 CPU / 2 disks (the realistic assumption): blocking wins",
      "reconciliation_finite", fin_reports, fin_columns);

  // Without a restart delay, the T/O algorithms restart-thrash at extreme
  // mpl (a transaction's timestamp goes stale against the flood of newer
  // commits and it loops). The paper's remedy — the adaptive restart delay —
  // caps the effective mpl and restores the plateau, exactly as it does for
  // immediate-restart.
  EngineConfig delayed = bench::PaperBaseConfig();
  delayed.resources = ResourceConfig::Infinite();
  delayed.restart_delay_mode = RestartDelayMode::kAdaptive;
  auto delayed_reports =
      bench::RunPaperSweep(delayed, lengths, {"basic_to", "mvto"});
  bench::EmitFigure(
      "Infinite resources + adaptive restart delay: T/O thrash arrested",
      "reconciliation_delayed", delayed_reports, columns);
  return bench::BenchExitCode();
}
