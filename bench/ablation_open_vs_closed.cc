// Ablation: closed (terminal) vs open (Poisson) workload sources.
//
// Every experiment in the paper uses a closed model, whose population
// self-throttles: when the system slows down, fewer transactions arrive.
// Several of the studies the paper reconciles used open models instead.
// This bench offers the same workload both ways: the closed system at 200
// terminals, and an open system fed at fractions of the closed system's
// measured capacity. The implication to observe: an open system near
// capacity builds queue (response times explode and the ready queue keeps
// growing — the run itself stays finite only because the simulation does),
// while the closed system degrades gracefully. The choice of source model
// is one more "alternative with implications".
#include <iostream>

#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  RunLengths lengths = bench::BenchLengths();
  bench::PrintBanner(
      "Ablation — closed terminals vs open Poisson arrivals (blocking, "
      "1 CPU / 2 disks, mpl=25)",
      lengths);

  EngineConfig base = bench::PaperBaseConfig();
  base.resources = ResourceConfig::Finite(1, 2);
  base.algorithm = "blocking";
  base.workload.mpl = 25;

  // Closed reference point (the paper's model) — must run first, because
  // the open arrival rates are fractions of its measured capacity.
  MetricsReport closed = RunOnePoint(base, lengths);
  double capacity = closed.throughput.mean;
  closed.algorithm = "closed 200 terms";
  std::cerr << "  closed capacity: " << capacity << " tps\n";

  // Open arrivals at 50%..105% of that capacity, run in parallel.
  std::vector<bench::LabeledPoint> points;
  for (double fraction : {0.5, 0.8, 0.9, 0.95, 1.05}) {
    EngineConfig open = base;
    open.source_mode = SourceMode::kOpen;
    open.arrival_rate = fraction * capacity;
    points.push_back(
        {StringPrintf("open %.0f%% cap", fraction * 100), open});
  }
  std::vector<MetricsReport> reports = bench::RunLabeledPoints(points, lengths);
  reports.insert(reports.begin(), closed);

  ReportColumns columns = ReportColumns::ThroughputOnly();
  columns.response = true;
  columns.percentiles = true;
  columns.avg_mpl = true;
  bench::EmitFigure(
      "Closed vs open source (watch response times explode near capacity)",
      "ablation_open_vs_closed", reports, columns);
  return bench::BenchExitCode();
}
