// Experiment 5 (Figures 16-21): interactive workloads on 1 CPU / 2 disks.
//
// Transactions read, think (form-screen style) while holding whatever the
// algorithm holds, then write. Internal think times of 1, 5, and 10 seconds
// are paired with external think times of 3, 11, and 21 seconds to keep the
// thinking/active ratio roughly constant. Expected: at 1 s blocking still
// wins; at 5 s and 10 s the resources look infinite and optimistic's best
// throughput beats blocking's, with immediate-restart ahead of optimistic
// only at high mpl (its delay limits the actual mpl).
#include "bench/harness.h"
#include "util/str.h"

int main() {
  using namespace ccsim;
  // Long think times need longer batches for stable counts.
  RunLengths lengths = bench::BenchLengths(/*batch_seconds=*/40.0,
                                           /*warmup_seconds=*/80.0);
  bench::PrintBanner(
      "Experiment 5 — interactive workloads (1 CPU, 2 disks), Figures 16-21",
      lengths);

  struct Setting {
    double int_think_s;
    double ext_think_s;
    int throughput_figure;
    int util_figure;
  };
  const Setting settings[] = {
      {1.0, 3.0, 16, 17}, {5.0, 11.0, 18, 19}, {10.0, 21.0, 20, 21}};

  for (const Setting& s : settings) {
    EngineConfig base = bench::PaperBaseConfig();
    base.resources = ResourceConfig::Finite(1, 2);
    base.workload.int_think_time = FromSeconds(s.int_think_s);
    base.workload.ext_think_time = FromSeconds(s.ext_think_s);
    auto reports = bench::RunPaperSweep(base, lengths);

    ReportColumns throughput = ReportColumns::ThroughputOnly();
    throughput.avg_mpl = true;
    bench::EmitFigure(
        StringPrintf("Figure %d: Throughput (%.0f Second Internal Thinking)",
                     s.throughput_figure, s.int_think_s),
        StringPrintf("fig%02d", s.throughput_figure), reports, throughput);

    ReportColumns utils = ReportColumns::ThroughputOnly();
    utils.disk_util = true;
    bench::EmitFigure(
        StringPrintf(
            "Figure %d: Disk Utilization (%.0f Second Internal Thinking)",
            s.util_figure, s.int_think_s),
        StringPrintf("fig%02d", s.util_figure), reports, utils);
  }
  return bench::BenchExitCode();
}
