#!/usr/bin/env bash
# Chaos torture lane for the crash-safe sweep machinery (docs/FAULTS.md).
#
# Runs CHAOS_CYCLES seeded kill/corrupt/resume cycles against one journaled
# bench sweep and requires the final CSVs to be byte-identical to an
# uninterrupted reference run. Each cycle:
#   1. resumes the sweep with CCSIM_FAULTS="journal.kill@hit:K" where K is
#      derived deterministically from (CHAOS_SEED, cycle) — the run reuses
#      everything journaled so far, then SIGKILLs itself the moment the K-th
#      *new* journal line of this cycle is durable (a cycle whose remaining
#      work is under K lines completes instead; both outcomes are legal);
#   2. on odd cycles, vandalizes the journal the way real crashes do: tears
#      trailing bytes off the final line and appends a garbage line — resume
#      must skip both, recompute the lost point, and never reuse a torn line.
# A final fault-free resume completes the sweep, must report journal reuse,
# and its CSVs are byte-diffed against the reference.
#
# Every cycle makes forward progress (the killed line is durable before the
# SIGKILL, and at most one point is lost to the odd-cycle tear), so the
# final resume converges no matter the seed.
#
# Usage: scripts/chaos_torture.sh <bench-binary> [workdir]
# Env:   CHAOS_CYCLES (default 10), CHAOS_SEED (default 1337),
#        CCSIM_* sizing knobs (a small deterministic default is applied).
set -euo pipefail

BIN="${1:?usage: chaos_torture.sh <bench-binary> [workdir]}"
WORK="${2:-$(mktemp -d /tmp/ccsim_chaos.XXXXXX)}"
CYCLES="${CHAOS_CYCLES:-10}"
SEED="${CHAOS_SEED:-1337}"
JOURNAL="${WORK}/journal.jsonl"
mkdir -p "${WORK}/ref" "${WORK}/chaos"

# Deterministic sizing: small enough that a torture lane of 10+ cycles runs
# in CI time, big enough that every cycle has multiple points to chew on.
SMOKE_ENV=(CCSIM_JOBS=2 CCSIM_BATCHES=2 CCSIM_BATCH_SECONDS=2
           CCSIM_WARMUP_SECONDS=1 CCSIM_MPLS=10,50,200)

echo "=== chaos torture: ${CYCLES} cycle(s), seed ${SEED} ==="
echo "=== reference run (uninterrupted, no journal) ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/ref" \
  "${BIN}" > "${WORK}/ref.log" 2>&1

kills=0 completions=0 corruptions=0
for ((cycle = 1; cycle <= CYCLES; ++cycle)); do
  # Deterministic (seed, cycle) -> kill line in 1..3: POSIX cksum's CRC is
  # identical on every platform, unlike $RANDOM.
  KILL_AT=$(( $(printf '%s-%s' "${SEED}" "${cycle}" | cksum | cut -d' ' -f1) % 3 + 1 ))
  rc=0
  env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/chaos" \
    CCSIM_JOURNAL="${JOURNAL}" CCSIM_FAULTS="journal.kill@hit:${KILL_AT}" \
    "${BIN}" > "${WORK}/cycle${cycle}.log" 2>&1 || rc=$?
  if [[ "${rc}" -eq 137 ]]; then
    kills=$((kills + 1))
    echo "cycle ${cycle}: killed at new journal line ${KILL_AT}" \
         "($(wc -l < "${JOURNAL}") line(s) on disk)"
  elif [[ "${rc}" -eq 0 ]]; then
    # Fewer than KILL_AT points were left to run: the sweep finished.
    completions=$((completions + 1))
    echo "cycle ${cycle}: sweep completed before hit ${KILL_AT}"
  else
    echo "FAIL: cycle ${cycle} exited ${rc} (expected 137 or 0);" \
         "see ${WORK}/cycle${cycle}.log" >&2
    exit 1
  fi

  if (( cycle % 2 == 1 )) && [[ -s "${JOURNAL}" ]]; then
    # Crash vandalism: tear bytes off the tail (a torn final append) and
    # add a line of garbage. Resume must shrug both off.
    corruptions=$((corruptions + 1))
    SIZE=$(stat -c %s "${JOURNAL}")
    TEAR=$(( (SEED + cycle) % 16 + 1 ))
    if (( SIZE > TEAR )); then
      truncate -s $((SIZE - TEAR)) "${JOURNAL}"
    fi
    echo "{ chaos garbage line, cycle ${cycle}" >> "${JOURNAL}"
  fi
done

echo "=== final fault-free resume ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/chaos" \
  CCSIM_JOURNAL="${JOURNAL}" "${BIN}" > "${WORK}/final.log" 2>&1

REUSED=$(grep -c ' \[journal\]' "${WORK}/final.log" || true)
if [[ "${kills}" -gt 0 && "${REUSED}" -eq 0 ]]; then
  echo "FAIL: final resume reused nothing despite ${kills} kill cycle(s);" \
       "see ${WORK}/final.log" >&2
  exit 1
fi

echo "=== diff: reference vs torture-survivor CSVs ==="
if ! diff -r "${WORK}/ref" "${WORK}/chaos"; then
  echo "FAIL: CSVs after ${CYCLES} kill/corrupt/resume cycle(s) differ from" \
       "the uninterrupted reference" >&2
  exit 1
fi
echo "chaos torture passed: ${CYCLES} cycle(s) (${kills} kill(s)," \
     "${completions} clean completion(s), ${corruptions} corruption(s))," \
     "final resume reused ${REUSED} point(s), CSVs byte-identical" \
     "(workdir: ${WORK})"
