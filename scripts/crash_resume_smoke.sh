#!/usr/bin/env bash
# Crash-recovery smoke test for the sweep journal (docs/EXECUTION.md).
#
# Runs a journaled bench sweep, SIGKILLs it mid-run (simulating a crash or
# OOM-kill), resumes it from the journal, and requires the resumed run to
# produce byte-identical CSVs to an uninterrupted reference run. Exercises:
#   * the journal survives an unclean death (including a torn final line),
#   * CCSIM_JOURNAL resume skips completed points and recomputes the rest,
#   * journaled and recomputed points are indistinguishable in the output.
#
# Usage: scripts/crash_resume_smoke.sh <bench-binary> [workdir]
# Exits nonzero on any mismatch; prints the offending diff.
set -euo pipefail

BIN="${1:?usage: crash_resume_smoke.sh <bench-binary> [workdir]}"
WORK="${2:-$(mktemp -d /tmp/ccsim_crash_resume.XXXXXX)}"
JOURNAL="${WORK}/journal.jsonl"
mkdir -p "${WORK}/ref" "${WORK}/crash"

# Sized so one full sweep takes seconds, not milliseconds — long enough for
# the kill below to land while points are still outstanding, short enough
# for CI. Results are job-count independent, so CCSIM_JOBS only changes how
# the wall clock is spent.
SMOKE_ENV=(CCSIM_JOBS=2 CCSIM_BATCHES=10 CCSIM_BATCH_SECONDS=100
           CCSIM_WARMUP_SECONDS=5 CCSIM_MPLS=10,50,200)

echo "=== reference run (uninterrupted, no journal) ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/ref" \
  "${BIN}" > "${WORK}/ref.log" 2>&1

echo "=== journaled run, SIGKILL mid-sweep ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/crash" \
  CCSIM_JOURNAL="${JOURNAL}" "${BIN}" > "${WORK}/crash.log" 2>&1 &
PID=$!
# Kill as soon as at least two points have been journaled: late enough that
# the resume has something to reuse, early enough that work remains.
for _ in $(seq 1 400); do
  if [[ -s "${JOURNAL}" ]] && (( $(wc -l < "${JOURNAL}") >= 2 )); then break; fi
  kill -0 "${PID}" 2>/dev/null || break
  sleep 0.05
done
if ! kill -0 "${PID}" 2>/dev/null; then
  wait "${PID}" || true
  echo "FAIL: sweep finished before it could be killed mid-run;" \
       "enlarge the smoke sizing in $0" >&2
  exit 1
fi
kill -KILL "${PID}"
wait "${PID}" 2>/dev/null || true
POINTS_BEFORE_KILL=$(wc -l < "${JOURNAL}")
echo "killed pid ${PID} with ${POINTS_BEFORE_KILL} point(s) journaled"

echo "=== resumed run (same journal, same CSV dir) ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/crash" \
  CCSIM_JOURNAL="${JOURNAL}" "${BIN}" > "${WORK}/resume.log" 2>&1

if ! grep -q ' \[journal\]' "${WORK}/resume.log"; then
  echo "FAIL: resumed run reports no journal hits (expected at least" \
       "${POINTS_BEFORE_KILL}); see ${WORK}/resume.log" >&2
  exit 1
fi
echo "resumed run reused $(grep -c ' \[journal\]' "${WORK}/resume.log")" \
     "journaled point(s)"

echo "=== diff: reference vs crash-resumed CSVs ==="
if ! diff -r "${WORK}/ref" "${WORK}/crash"; then
  echo "FAIL: resumed CSVs differ from the uninterrupted reference run" >&2
  exit 1
fi
echo "crash-resume smoke passed (workdir: ${WORK})"
