#!/usr/bin/env bash
# Crash-recovery smoke test for the sweep journal (docs/EXECUTION.md).
#
# Runs a journaled bench sweep that SIGKILLs *itself* at a chosen journal
# line via the deterministic fault injector (CCSIM_FAULTS="journal.kill@hit:N",
# docs/FAULTS.md) — no wall-clock sleeps, no kill races: the crash lands at
# the same point on every machine, the instant the N-th journal line is
# durable. Then resumes from the journal and requires the resumed run to
# produce byte-identical CSVs to an uninterrupted reference run. Exercises:
#   * the journal survives an unclean death at a deterministic line,
#   * CCSIM_JOURNAL resume skips completed points and recomputes the rest,
#   * journaled and recomputed points are indistinguishable in the output.
#
# Usage: scripts/crash_resume_smoke.sh <bench-binary> [workdir]
# Exits nonzero on any mismatch; prints the offending diff.
set -euo pipefail

BIN="${1:?usage: crash_resume_smoke.sh <bench-binary> [workdir]}"
WORK="${2:-$(mktemp -d /tmp/ccsim_crash_resume.XXXXXX)}"
JOURNAL="${WORK}/journal.jsonl"
KILL_AT=2   # Die the moment the 2nd journal line is durable.
mkdir -p "${WORK}/ref" "${WORK}/crash"

# Small on purpose: the kill point is deterministic, so the sweep no longer
# needs to be big enough to outrun a racing `kill` from the shell.
SMOKE_ENV=(CCSIM_JOBS=2 CCSIM_BATCHES=2 CCSIM_BATCH_SECONDS=2
           CCSIM_WARMUP_SECONDS=1 CCSIM_MPLS=10,50,200)

echo "=== reference run (uninterrupted, no journal) ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/ref" \
  "${BIN}" > "${WORK}/ref.log" 2>&1

echo "=== journaled run, journal.kill@hit:${KILL_AT} (self-SIGKILL) ==="
rc=0
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/crash" \
  CCSIM_JOURNAL="${JOURNAL}" CCSIM_FAULTS="journal.kill@hit:${KILL_AT}" \
  "${BIN}" > "${WORK}/crash.log" 2>&1 || rc=$?
if [[ "${rc}" -ne 137 ]]; then
  echo "FAIL: expected the faulted run to die by SIGKILL (exit 137)," \
       "got ${rc}; see ${WORK}/crash.log" >&2
  exit 1
fi
if ! grep -q '^\[faults\] plan active:' "${WORK}/crash.log"; then
  echo "FAIL: faulted run never activated its fault plan;" \
       "see ${WORK}/crash.log" >&2
  exit 1
fi
POINTS_BEFORE_KILL=$(wc -l < "${JOURNAL}")
if [[ "${POINTS_BEFORE_KILL}" -ne "${KILL_AT}" ]]; then
  echo "FAIL: journal holds ${POINTS_BEFORE_KILL} line(s) after" \
       "journal.kill@hit:${KILL_AT}; the kill must land right after the" \
       "N-th line is durable" >&2
  exit 1
fi
echo "run killed itself with exactly ${POINTS_BEFORE_KILL} point(s) durable"

echo "=== resumed run (same journal, same CSV dir, no faults) ==="
env "${SMOKE_ENV[@]}" CCSIM_CSV_DIR="${WORK}/crash" \
  CCSIM_JOURNAL="${JOURNAL}" "${BIN}" > "${WORK}/resume.log" 2>&1

RESUMED=$(grep -c ' \[journal\]' "${WORK}/resume.log" || true)
if [[ "${RESUMED}" -lt "${POINTS_BEFORE_KILL}" ]]; then
  echo "FAIL: resumed run reused ${RESUMED} journaled point(s), expected at" \
       "least ${POINTS_BEFORE_KILL}; see ${WORK}/resume.log" >&2
  exit 1
fi
echo "resumed run reused ${RESUMED} journaled point(s)"

echo "=== diff: reference vs crash-resumed CSVs ==="
if ! diff -r "${WORK}/ref" "${WORK}/crash"; then
  echo "FAIL: resumed CSVs differ from the uninterrupted reference run" >&2
  exit 1
fi
echo "crash-resume smoke passed (workdir: ${WORK})"
