#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# figure with the paper's 20-batch methodology, and (if gnuplot is
# installed) render the plots.
#
#   scripts/reproduce.sh [results_dir]
#
# Scale statistical effort with CCSIM_BATCHES / CCSIM_BATCH_SECONDS /
# CCSIM_WARMUP_SECONDS; change the sample path with CCSIM_SEED. Sweeps run
# their points across CCSIM_JOBS worker threads (default: all cores; results
# are bit-identical at any job count — see docs/EXECUTION.md).
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
export CCSIM_JOBS="${CCSIM_JOBS:-$(nproc)}"
echo "reproduce: CCSIM_JOBS=${CCSIM_JOBS} worker threads per sweep"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

mkdir -p "$RESULTS"
export CCSIM_CSV_DIR="$(cd "$RESULTS" && pwd)"
{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>"$RESULTS/progress.log" | tee bench_output.txt

if command -v gnuplot >/dev/null 2>&1; then
  (cd "$RESULTS" && for gp in *.gp; do [ -f "$gp" ] && gnuplot "$gp"; done)
  echo "plots rendered into $RESULTS/"
else
  echo "gnuplot not found; CSVs and .gp scripts are in $RESULTS/"
fi
