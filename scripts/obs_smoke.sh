#!/usr/bin/env bash
# Observability smoke test (docs/OBSERVABILITY.md).
#
# Runs one bench point with the full observability stack on — phase
# breakdown, time-series sampler, Perfetto trace export — and validates
# the artifacts:
#   * the report table carries the ph_* phase columns,
#   * every trace_*.json parses as JSON (structural check if python3 is
#     absent) and is non-trivial,
#   * every ts_*.csv is non-empty, rectangular, and time-monotone, with a
#     companion .gp script.
#
# Usage: scripts/obs_smoke.sh <bench-binary>
#   e.g.  scripts/obs_smoke.sh ./build/bench/fig03_04_low_conflict
set -euo pipefail

BENCH="${1:?usage: scripts/obs_smoke.sh <bench-binary>}"
OUT="$(mktemp -d "${TMPDIR:-/tmp}/ccsim_obs_smoke.XXXXXX")"
trap 'rm -rf "${OUT}"' EXIT

echo "obs smoke: ${BENCH} -> ${OUT}"
CCSIM_JOBS=2 CCSIM_BATCHES=2 CCSIM_BATCH_SECONDS=1 CCSIM_WARMUP_SECONDS=1 \
CCSIM_MPLS=25 CCSIM_CSV_DIR="${OUT}" CCSIM_SAMPLE_SECONDS=0.25 \
CCSIM_TRACE="${OUT}" CCSIM_REPORT_COLUMNS=all \
  "${BENCH}" > "${OUT}/table.txt"

# 1. Phase columns made it into the table.
grep -q 'ph_blk' "${OUT}/table.txt" || {
  echo "FAIL: report table has no phase columns"; cat "${OUT}/table.txt"; exit 1; }

# 2. Perfetto traces parse.
TRACES=("${OUT}"/trace_*.json)
[[ -e "${TRACES[0]}" ]] || { echo "FAIL: no trace_*.json produced"; exit 1; }
for trace in "${TRACES[@]}"; do
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${trace}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert len(events) > 100, f"only {len(events)} trace events"
assert any(e.get("ph") == "X" for e in events), "no slice events"
assert any(e.get("ph") == "C" for e in events), "no counter events"
EOF
  else
    # Structural fallback: object form, array present, balanced braces.
    head -c 16 "${trace}" | grep -q '{"traceEvents":' || {
      echo "FAIL: ${trace} is not trace-event JSON"; exit 1; }
    tail -c 4 "${trace}" | grep -q ']}' || {
      echo "FAIL: ${trace} is not closed"; exit 1; }
  fi
  echo "ok: ${trace}"
done

# 3. Time-series CSVs: non-empty, rectangular, strictly increasing time.
SERIES=("${OUT}"/ts_*.csv)
[[ -e "${SERIES[0]}" ]] || { echo "FAIL: no ts_*.csv produced"; exit 1; }
for csv in "${SERIES[@]}"; do
  awk -F, '
    NR == 1 { cols = NF; if ($1 != "time_s") { print FILENAME ": bad header"; exit 1 } next }
    NF != cols { print FILENAME ": ragged row " NR; exit 1 }
    NR > 2 && $1 + 0 <= prev { print FILENAME ": time not monotone at row " NR; exit 1 }
    { prev = $1 + 0; rows++ }
    END { if (rows < 2) { print FILENAME ": too few samples (" rows ")"; exit 1 } }
  ' "${csv}"
  [[ -s "${csv%.csv}.gp" ]] || { echo "FAIL: missing ${csv%.csv}.gp"; exit 1; }
  echo "ok: ${csv}"
done

echo "obs smoke passed."
