#!/usr/bin/env bash
# Microbenchmark + determinism smoke (CI release lane; scripts/check.sh).
#
#   1. Runs bench/micro_kernel and validates the emitted BENCH_sim.json:
#      parses as JSON, carries the expected schema tag, and every throughput
#      field is strictly positive (the binary also self-checks this — a zero
#      means a bench silently broke, not that the machine is slow).
#   2. Gates the run with the noise-aware perf-regression gate
#      (tools/ccsim_perf/ccsim_perf.py) against a scratch copy of the
#      committed trajectory (bench/BENCH_trajectory.jsonl): the gate's
#      self-test must catch a planted slowdown, the fresh run must not
#      regress vs the history under the Student-t noise model, and the
#      committed trajectory itself must validate. The scratch copy keeps
#      CI machines from polluting the committed history — wall-clock
#      rates are only comparable within one machine class
#      (docs/PERFORMANCE.md).
#   3. Regenerates the fig03/fig04 CSVs with the pinned short-batch
#      configuration and requires them byte-identical to the committed
#      references (bench/reference/). Simulated results depend only on the
#      seed and run lengths, never on the host or job count, so any diff is
#      a real behavior change in the engine — see docs/PERFORMANCE.md.
#
# Usage: scripts/bench_smoke.sh <build-dir>   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

echo "--- micro_kernel -> BENCH_sim.json ---"
CCSIM_BENCH_JSON="${TMP}/BENCH_sim.json" "${BUILD}/bench/micro_kernel"
python3 - "${TMP}/BENCH_sim.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "ccsim-bench-v1", doc.get("schema")
assert doc["event_churn"]["events_per_sec"] > 0
assert doc["event_churn"]["peak_heap_entries"] > 0
assert doc["lock_grant_release"]["requests_per_sec"] > 0
algos = ["blocking", "immediate_restart", "optimistic", "optimistic_forward",
         "wound_wait", "wait_die", "basic_to", "mvto", "static_locking"]
cc = doc["cc_decision"]
entries = [k for k in cc if k != "budget"]
assert sorted(entries) == sorted(algos), entries
for algo in algos:
    assert cc[algo]["decisions_per_sec"] > 0, algo
    assert cc[algo]["commits"] > 0, algo
assert doc["end_to_end_fig03"]["throughput_txn_per_sim_sec"] > 0
assert doc["end_to_end_fig03"]["commits"] > 0
assert int(doc["end_to_end_fig03"]["replay_digest"], 16) != 0
print("BENCH_sim.json OK: %.1fM events/sec churn, 9-algorithm cc_decision, "
      "%.1f txn/s end-to-end"
      % (doc["event_churn"]["events_per_sec"] / 1e6,
         doc["end_to_end_fig03"]["throughput_txn_per_sim_sec"]))
EOF

echo "--- perf-regression gate (ccsim-perf, Student-t noise model) ---"
python3 tools/ccsim_perf/ccsim_perf.py --self-test
# Gate against a scratch copy of the committed history: CI hardware differs
# from the machine that recorded it, so the comparison is advisory there but
# the tooling path (parse, judge, append) is exercised end to end. The
# committed file itself must always validate.
cp bench/BENCH_trajectory.jsonl "${TMP}/BENCH_trajectory.jsonl"
python3 tools/ccsim_perf/ccsim_perf.py \
  --bench "${TMP}/BENCH_sim.json" \
  --trajectory "${TMP}/BENCH_trajectory.jsonl" --append
python3 tools/ccsim_perf/ccsim_perf.py --validate bench/BENCH_trajectory.jsonl

echo "--- fig03/fig04 determinism vs committed references ---"
CCSIM_CSV_DIR="${TMP}" CCSIM_BATCHES=2 CCSIM_BATCH_SECONDS=1 \
  CCSIM_WARMUP_SECONDS=1 "${BUILD}/bench/fig03_04_low_conflict" >/dev/null
diff "${TMP}/fig03.csv" bench/reference/fig03.csv
diff "${TMP}/fig04.csv" bench/reference/fig04.csv
echo "fig03/fig04 CSVs byte-identical to bench/reference/"
