#!/usr/bin/env bash
# Local reproduction of the CI matrix (.github/workflows/ci.yml):
#   1. RelWithDebInfo build + full ctest suite
#   2. ASan+UBSan build + full ctest suite
#   3. TSan build + full ctest suite, plus the parallel-runner tests re-run
#      under CCSIM_JOBS=8 (the threaded sweep path under TSan)
#   4. bench smoke: one figure binary, short batches, CCSIM_JOBS=4, then
#      the microbench smoke (BENCH_sim.json validation, the ccsim-perf
#      noise-aware regression gate against bench/BENCH_trajectory.jsonl,
#      and byte-identical fig03 CSV vs the committed reference —
#      scripts/bench_smoke.sh)
#   5. crash-resume smoke: a journaled sweep SIGKILLs itself at a
#      deterministic journal line (CCSIM_FAULTS="journal.kill@hit:N"), is
#      resumed from the journal, and its CSVs are diffed against an
#      uninterrupted reference run
#   6. observability smoke: one figure point with the sampler + Perfetto
#      trace on; validates the trace parses and the time-series CSV is
#      non-empty and time-monotone (docs/OBSERVABILITY.md)
#   7. ccsim-lint: project-rule linter (determinism, env-knob, observability
#      and layering rules — docs/VERIFICATION.md), self-test first
#   8. deep schedule-space verification: verify_test re-run with
#      CCSIM_VERIFY_DEPTH=8 (the full ctest pass above ran the shallow
#      PR-lane depth); skipped with --fast
#   9. chaos torture: seeded kill/corrupt/resume cycles against a journaled
#      sweep, CSVs byte-diffed against an uninterrupted reference
#      (scripts/chaos_torture.sh, docs/FAULTS.md); skipped with --fast
#  10. clang-tidy over src/ (skipped with a notice if clang-tidy is absent —
#      the local toolchain may be gcc-only; CI still enforces it)
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer builds and the deep verification pass
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(($(nproc) > 1 ? $(nproc) : 2))
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_config() {
  local name="$1"; shift
  echo "=== ${name} ==="
  cmake -B "build-${name}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "build-${name}" -j "${JOBS}"
  ctest --test-dir "build-${name}" --output-on-failure -j "${JOBS}"
}

run_config plain
if [[ "${FAST}" -eq 0 ]]; then
  run_config asan -DCCSIM_SAN=address,undefined
  run_config tsan -DCCSIM_SAN=thread
  echo "=== parallel-runner tests under TSan, CCSIM_JOBS=8 ==="
  CCSIM_JOBS=8 ctest --test-dir build-tsan --output-on-failure \
    -R '(ParallelSweep|ParallelReplication|RunPoints|ThreadPool|ParallelFor|Jobs)'
fi

echo "=== bench smoke (fig03_04, short batches, CCSIM_JOBS=4) ==="
CCSIM_JOBS=4 CCSIM_BATCHES=2 CCSIM_BATCH_SECONDS=1 CCSIM_WARMUP_SECONDS=1 \
  ./build-plain/bench/fig03_04_low_conflict >/dev/null

echo "=== microbench smoke (BENCH_sim.json + perf gate + fig03/04 diff) ==="
scripts/bench_smoke.sh build-plain

echo "=== crash-resume smoke (SIGKILL mid-sweep, journal resume, CSV diff) ==="
scripts/crash_resume_smoke.sh ./build-plain/bench/fig03_04_low_conflict

echo "=== observability smoke (sampler + trace artifacts validated) ==="
scripts/obs_smoke.sh ./build-plain/bench/fig03_04_low_conflict

echo "=== ccsim-lint (self-test, then the tree) ==="
python3 tools/ccsim_lint/ccsim_lint.py --self-test
python3 tools/ccsim_lint/ccsim_lint.py

if [[ "${FAST}" -eq 0 ]]; then
  echo "=== deep schedule-space verification (CCSIM_VERIFY_DEPTH=8) ==="
  CCSIM_VERIFY_DEPTH=8 ctest --test-dir build-plain --output-on-failure \
    --no-tests=error -R '(MatrixTest|ExplorerTest|MutationTest)'

  echo "=== chaos torture (seeded kill/corrupt/resume cycles) ==="
  scripts/chaos_torture.sh ./build-plain/bench/fig03_04_low_conflict
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy ==="
  cmake --build build-plain --target tidy
else
  echo "=== clang-tidy not installed; skipped (CI runs it) ==="
fi

echo "All checks passed."
