# Empty compiler generated dependencies file for ccsim_res.
# This may be replaced when dependencies are built.
