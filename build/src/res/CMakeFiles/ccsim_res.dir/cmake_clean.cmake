file(REMOVE_RECURSE
  "CMakeFiles/ccsim_res.dir/resources.cc.o"
  "CMakeFiles/ccsim_res.dir/resources.cc.o.d"
  "CMakeFiles/ccsim_res.dir/server_pool.cc.o"
  "CMakeFiles/ccsim_res.dir/server_pool.cc.o.d"
  "libccsim_res.a"
  "libccsim_res.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_res.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
