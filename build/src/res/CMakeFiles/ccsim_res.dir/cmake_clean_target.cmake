file(REMOVE_RECURSE
  "libccsim_res.a"
)
