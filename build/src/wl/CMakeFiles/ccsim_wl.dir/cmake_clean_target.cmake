file(REMOVE_RECURSE
  "libccsim_wl.a"
)
