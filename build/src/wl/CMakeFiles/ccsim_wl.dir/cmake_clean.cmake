file(REMOVE_RECURSE
  "CMakeFiles/ccsim_wl.dir/params.cc.o"
  "CMakeFiles/ccsim_wl.dir/params.cc.o.d"
  "CMakeFiles/ccsim_wl.dir/workload.cc.o"
  "CMakeFiles/ccsim_wl.dir/workload.cc.o.d"
  "libccsim_wl.a"
  "libccsim_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
