# Empty compiler generated dependencies file for ccsim_wl.
# This may be replaced when dependencies are built.
