# Empty compiler generated dependencies file for ccsim_cc.
# This may be replaced when dependencies are built.
