
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/basic_to.cc" "src/cc/CMakeFiles/ccsim_cc.dir/basic_to.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/basic_to.cc.o.d"
  "/root/repo/src/cc/blocking.cc" "src/cc/CMakeFiles/ccsim_cc.dir/blocking.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/blocking.cc.o.d"
  "/root/repo/src/cc/deadlock.cc" "src/cc/CMakeFiles/ccsim_cc.dir/deadlock.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/deadlock.cc.o.d"
  "/root/repo/src/cc/factory.cc" "src/cc/CMakeFiles/ccsim_cc.dir/factory.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/factory.cc.o.d"
  "/root/repo/src/cc/lock_manager.cc" "src/cc/CMakeFiles/ccsim_cc.dir/lock_manager.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/lock_manager.cc.o.d"
  "/root/repo/src/cc/mvto.cc" "src/cc/CMakeFiles/ccsim_cc.dir/mvto.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/mvto.cc.o.d"
  "/root/repo/src/cc/optimistic.cc" "src/cc/CMakeFiles/ccsim_cc.dir/optimistic.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/optimistic.cc.o.d"
  "/root/repo/src/cc/optimistic_forward.cc" "src/cc/CMakeFiles/ccsim_cc.dir/optimistic_forward.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/optimistic_forward.cc.o.d"
  "/root/repo/src/cc/static_locking.cc" "src/cc/CMakeFiles/ccsim_cc.dir/static_locking.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/static_locking.cc.o.d"
  "/root/repo/src/cc/timestamp_locking.cc" "src/cc/CMakeFiles/ccsim_cc.dir/timestamp_locking.cc.o" "gcc" "src/cc/CMakeFiles/ccsim_cc.dir/timestamp_locking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/ccsim_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
