file(REMOVE_RECURSE
  "libccsim_cc.a"
)
