file(REMOVE_RECURSE
  "CMakeFiles/ccsim_cc.dir/basic_to.cc.o"
  "CMakeFiles/ccsim_cc.dir/basic_to.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/blocking.cc.o"
  "CMakeFiles/ccsim_cc.dir/blocking.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/deadlock.cc.o"
  "CMakeFiles/ccsim_cc.dir/deadlock.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/factory.cc.o"
  "CMakeFiles/ccsim_cc.dir/factory.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/lock_manager.cc.o"
  "CMakeFiles/ccsim_cc.dir/lock_manager.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/mvto.cc.o"
  "CMakeFiles/ccsim_cc.dir/mvto.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/optimistic.cc.o"
  "CMakeFiles/ccsim_cc.dir/optimistic.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/optimistic_forward.cc.o"
  "CMakeFiles/ccsim_cc.dir/optimistic_forward.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/static_locking.cc.o"
  "CMakeFiles/ccsim_cc.dir/static_locking.cc.o.d"
  "CMakeFiles/ccsim_cc.dir/timestamp_locking.cc.o"
  "CMakeFiles/ccsim_cc.dir/timestamp_locking.cc.o.d"
  "libccsim_cc.a"
  "libccsim_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
