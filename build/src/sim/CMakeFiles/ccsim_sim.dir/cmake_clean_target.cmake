file(REMOVE_RECURSE
  "libccsim_sim.a"
)
