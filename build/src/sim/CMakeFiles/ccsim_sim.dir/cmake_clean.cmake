file(REMOVE_RECURSE
  "CMakeFiles/ccsim_sim.dir/simulator.cc.o"
  "CMakeFiles/ccsim_sim.dir/simulator.cc.o.d"
  "libccsim_sim.a"
  "libccsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
