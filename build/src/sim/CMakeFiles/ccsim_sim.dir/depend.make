# Empty dependencies file for ccsim_sim.
# This may be replaced when dependencies are built.
