file(REMOVE_RECURSE
  "CMakeFiles/ccsim_core.dir/adaptive_mpl.cc.o"
  "CMakeFiles/ccsim_core.dir/adaptive_mpl.cc.o.d"
  "CMakeFiles/ccsim_core.dir/closed_system.cc.o"
  "CMakeFiles/ccsim_core.dir/closed_system.cc.o.d"
  "CMakeFiles/ccsim_core.dir/experiment.cc.o"
  "CMakeFiles/ccsim_core.dir/experiment.cc.o.d"
  "CMakeFiles/ccsim_core.dir/history.cc.o"
  "CMakeFiles/ccsim_core.dir/history.cc.o.d"
  "CMakeFiles/ccsim_core.dir/report.cc.o"
  "CMakeFiles/ccsim_core.dir/report.cc.o.d"
  "CMakeFiles/ccsim_core.dir/trace.cc.o"
  "CMakeFiles/ccsim_core.dir/trace.cc.o.d"
  "libccsim_core.a"
  "libccsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
