file(REMOVE_RECURSE
  "libccsim_core.a"
)
