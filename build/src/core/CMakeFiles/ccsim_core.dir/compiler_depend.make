# Empty compiler generated dependencies file for ccsim_core.
# This may be replaced when dependencies are built.
