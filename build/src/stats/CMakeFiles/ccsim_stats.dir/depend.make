# Empty dependencies file for ccsim_stats.
# This may be replaced when dependencies are built.
