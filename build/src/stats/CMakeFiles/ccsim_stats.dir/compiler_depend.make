# Empty compiler generated dependencies file for ccsim_stats.
# This may be replaced when dependencies are built.
