file(REMOVE_RECURSE
  "libccsim_stats.a"
)
