file(REMOVE_RECURSE
  "CMakeFiles/ccsim_stats.dir/batch_means.cc.o"
  "CMakeFiles/ccsim_stats.dir/batch_means.cc.o.d"
  "CMakeFiles/ccsim_stats.dir/histogram.cc.o"
  "CMakeFiles/ccsim_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ccsim_stats.dir/student_t.cc.o"
  "CMakeFiles/ccsim_stats.dir/student_t.cc.o.d"
  "libccsim_stats.a"
  "libccsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
