file(REMOVE_RECURSE
  "CMakeFiles/ccsim_analytic.dir/lock_contention.cc.o"
  "CMakeFiles/ccsim_analytic.dir/lock_contention.cc.o.d"
  "CMakeFiles/ccsim_analytic.dir/mva.cc.o"
  "CMakeFiles/ccsim_analytic.dir/mva.cc.o.d"
  "libccsim_analytic.a"
  "libccsim_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
