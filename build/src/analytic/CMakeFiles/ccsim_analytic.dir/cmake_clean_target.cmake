file(REMOVE_RECURSE
  "libccsim_analytic.a"
)
