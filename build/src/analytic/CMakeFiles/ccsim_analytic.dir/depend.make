# Empty dependencies file for ccsim_analytic.
# This may be replaced when dependencies are built.
