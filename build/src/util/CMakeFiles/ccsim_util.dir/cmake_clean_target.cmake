file(REMOVE_RECURSE
  "libccsim_util.a"
)
