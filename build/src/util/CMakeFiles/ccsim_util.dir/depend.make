# Empty dependencies file for ccsim_util.
# This may be replaced when dependencies are built.
