file(REMOVE_RECURSE
  "CMakeFiles/ccsim_util.dir/check.cc.o"
  "CMakeFiles/ccsim_util.dir/check.cc.o.d"
  "CMakeFiles/ccsim_util.dir/config.cc.o"
  "CMakeFiles/ccsim_util.dir/config.cc.o.d"
  "CMakeFiles/ccsim_util.dir/csv.cc.o"
  "CMakeFiles/ccsim_util.dir/csv.cc.o.d"
  "CMakeFiles/ccsim_util.dir/env.cc.o"
  "CMakeFiles/ccsim_util.dir/env.cc.o.d"
  "CMakeFiles/ccsim_util.dir/logging.cc.o"
  "CMakeFiles/ccsim_util.dir/logging.cc.o.d"
  "CMakeFiles/ccsim_util.dir/random.cc.o"
  "CMakeFiles/ccsim_util.dir/random.cc.o.d"
  "CMakeFiles/ccsim_util.dir/str.cc.o"
  "CMakeFiles/ccsim_util.dir/str.cc.o.d"
  "libccsim_util.a"
  "libccsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
