# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/mva_test[1]_include.cmake")
include("/root/repo/build/tests/lock_contention_test[1]_include.cmake")
include("/root/repo/build/tests/res_test[1]_include.cmake")
include("/root/repo/build/tests/wl_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/lock_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/cc_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/restart_policy_test[1]_include.cmake")
include("/root/repo/build/tests/timestamp_ordering_test[1]_include.cmake")
include("/root/repo/build/tests/static_locking_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_modes_test[1]_include.cmake")
include("/root/repo/build/tests/granularity_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
