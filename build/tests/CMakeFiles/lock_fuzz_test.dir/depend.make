# Empty dependencies file for lock_fuzz_test.
# This may be replaced when dependencies are built.
