file(REMOVE_RECURSE
  "CMakeFiles/lock_fuzz_test.dir/lock_fuzz_test.cc.o"
  "CMakeFiles/lock_fuzz_test.dir/lock_fuzz_test.cc.o.d"
  "lock_fuzz_test"
  "lock_fuzz_test.pdb"
  "lock_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
