# Empty dependencies file for res_test.
# This may be replaced when dependencies are built.
