file(REMOVE_RECURSE
  "CMakeFiles/res_test.dir/res_test.cc.o"
  "CMakeFiles/res_test.dir/res_test.cc.o.d"
  "res_test"
  "res_test.pdb"
  "res_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/res_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
