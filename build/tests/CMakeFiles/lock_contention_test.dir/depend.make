# Empty dependencies file for lock_contention_test.
# This may be replaced when dependencies are built.
