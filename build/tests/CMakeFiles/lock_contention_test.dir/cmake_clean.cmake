file(REMOVE_RECURSE
  "CMakeFiles/lock_contention_test.dir/lock_contention_test.cc.o"
  "CMakeFiles/lock_contention_test.dir/lock_contention_test.cc.o.d"
  "lock_contention_test"
  "lock_contention_test.pdb"
  "lock_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
