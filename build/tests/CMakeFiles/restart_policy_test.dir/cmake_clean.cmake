file(REMOVE_RECURSE
  "CMakeFiles/restart_policy_test.dir/restart_policy_test.cc.o"
  "CMakeFiles/restart_policy_test.dir/restart_policy_test.cc.o.d"
  "restart_policy_test"
  "restart_policy_test.pdb"
  "restart_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
