# Empty compiler generated dependencies file for restart_policy_test.
# This may be replaced when dependencies are built.
