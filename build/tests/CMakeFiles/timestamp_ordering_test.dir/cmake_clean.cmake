file(REMOVE_RECURSE
  "CMakeFiles/timestamp_ordering_test.dir/timestamp_ordering_test.cc.o"
  "CMakeFiles/timestamp_ordering_test.dir/timestamp_ordering_test.cc.o.d"
  "timestamp_ordering_test"
  "timestamp_ordering_test.pdb"
  "timestamp_ordering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
