# Empty compiler generated dependencies file for timestamp_ordering_test.
# This may be replaced when dependencies are built.
