# Empty compiler generated dependencies file for granularity_test.
# This may be replaced when dependencies are built.
