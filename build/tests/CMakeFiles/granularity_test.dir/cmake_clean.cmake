file(REMOVE_RECURSE
  "CMakeFiles/granularity_test.dir/granularity_test.cc.o"
  "CMakeFiles/granularity_test.dir/granularity_test.cc.o.d"
  "granularity_test"
  "granularity_test.pdb"
  "granularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
