file(REMOVE_RECURSE
  "CMakeFiles/mva_test.dir/mva_test.cc.o"
  "CMakeFiles/mva_test.dir/mva_test.cc.o.d"
  "mva_test"
  "mva_test.pdb"
  "mva_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
