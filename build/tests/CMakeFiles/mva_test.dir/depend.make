# Empty dependencies file for mva_test.
# This may be replaced when dependencies are built.
