file(REMOVE_RECURSE
  "CMakeFiles/engine_modes_test.dir/engine_modes_test.cc.o"
  "CMakeFiles/engine_modes_test.dir/engine_modes_test.cc.o.d"
  "engine_modes_test"
  "engine_modes_test.pdb"
  "engine_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
