# Empty dependencies file for engine_modes_test.
# This may be replaced when dependencies are built.
