file(REMOVE_RECURSE
  "CMakeFiles/static_locking_test.dir/static_locking_test.cc.o"
  "CMakeFiles/static_locking_test.dir/static_locking_test.cc.o.d"
  "static_locking_test"
  "static_locking_test.pdb"
  "static_locking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_locking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
