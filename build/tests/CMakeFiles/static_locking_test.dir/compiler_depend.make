# Empty compiler generated dependencies file for static_locking_test.
# This may be replaced when dependencies are built.
