# Empty compiler generated dependencies file for run_config.
# This may be replaced when dependencies are built.
