file(REMOVE_RECURSE
  "CMakeFiles/run_config.dir/run_config.cpp.o"
  "CMakeFiles/run_config.dir/run_config.cpp.o.d"
  "run_config"
  "run_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
