# Empty compiler generated dependencies file for interactive_forms.
# This may be replaced when dependencies are built.
