file(REMOVE_RECURSE
  "CMakeFiles/interactive_forms.dir/interactive_forms.cpp.o"
  "CMakeFiles/interactive_forms.dir/interactive_forms.cpp.o.d"
  "interactive_forms"
  "interactive_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
