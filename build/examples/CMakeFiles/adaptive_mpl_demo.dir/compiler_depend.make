# Empty compiler generated dependencies file for adaptive_mpl_demo.
# This may be replaced when dependencies are built.
