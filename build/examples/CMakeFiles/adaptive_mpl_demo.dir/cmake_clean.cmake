file(REMOVE_RECURSE
  "CMakeFiles/adaptive_mpl_demo.dir/adaptive_mpl_demo.cpp.o"
  "CMakeFiles/adaptive_mpl_demo.dir/adaptive_mpl_demo.cpp.o.d"
  "adaptive_mpl_demo"
  "adaptive_mpl_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_mpl_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
