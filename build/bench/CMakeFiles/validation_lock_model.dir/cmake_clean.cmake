file(REMOVE_RECURSE
  "CMakeFiles/validation_lock_model.dir/validation_lock_model.cc.o"
  "CMakeFiles/validation_lock_model.dir/validation_lock_model.cc.o.d"
  "validation_lock_model"
  "validation_lock_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_lock_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
