# Empty dependencies file for validation_lock_model.
# This may be replaced when dependencies are built.
