# Empty dependencies file for ablation_workload_mix.
# This may be replaced when dependencies are built.
