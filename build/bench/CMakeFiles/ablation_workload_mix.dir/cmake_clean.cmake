file(REMOVE_RECURSE
  "CMakeFiles/ablation_workload_mix.dir/ablation_workload_mix.cc.o"
  "CMakeFiles/ablation_workload_mix.dir/ablation_workload_mix.cc.o.d"
  "ablation_workload_mix"
  "ablation_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
