file(REMOVE_RECURSE
  "CMakeFiles/reconciliation_timestamp.dir/reconciliation_timestamp.cc.o"
  "CMakeFiles/reconciliation_timestamp.dir/reconciliation_timestamp.cc.o.d"
  "reconciliation_timestamp"
  "reconciliation_timestamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconciliation_timestamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
