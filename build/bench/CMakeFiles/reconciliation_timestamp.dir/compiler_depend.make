# Empty compiler generated dependencies file for reconciliation_timestamp.
# This may be replaced when dependencies are built.
