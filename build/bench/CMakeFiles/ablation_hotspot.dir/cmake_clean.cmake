file(REMOVE_RECURSE
  "CMakeFiles/ablation_hotspot.dir/ablation_hotspot.cc.o"
  "CMakeFiles/ablation_hotspot.dir/ablation_hotspot.cc.o.d"
  "ablation_hotspot"
  "ablation_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
