file(REMOVE_RECURSE
  "CMakeFiles/validation_mva.dir/validation_mva.cc.o"
  "CMakeFiles/validation_mva.dir/validation_mva.cc.o.d"
  "validation_mva"
  "validation_mva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_mva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
