# Empty dependencies file for validation_mva.
# This may be replaced when dependencies are built.
