file(REMOVE_RECURSE
  "CMakeFiles/ablation_victim_policy.dir/ablation_victim_policy.cc.o"
  "CMakeFiles/ablation_victim_policy.dir/ablation_victim_policy.cc.o.d"
  "ablation_victim_policy"
  "ablation_victim_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_victim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
