# Empty dependencies file for ablation_victim_policy.
# This may be replaced when dependencies are built.
