file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_mpl.dir/ablation_adaptive_mpl.cc.o"
  "CMakeFiles/ablation_adaptive_mpl.dir/ablation_adaptive_mpl.cc.o.d"
  "ablation_adaptive_mpl"
  "ablation_adaptive_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
