# Empty compiler generated dependencies file for ablation_adaptive_mpl.
# This may be replaced when dependencies are built.
