file(REMOVE_RECURSE
  "CMakeFiles/ablation_mixed_oltp.dir/ablation_mixed_oltp.cc.o"
  "CMakeFiles/ablation_mixed_oltp.dir/ablation_mixed_oltp.cc.o.d"
  "ablation_mixed_oltp"
  "ablation_mixed_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixed_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
