# Empty compiler generated dependencies file for ablation_mixed_oltp.
# This may be replaced when dependencies are built.
