# Empty compiler generated dependencies file for fig03_04_low_conflict.
# This may be replaced when dependencies are built.
