file(REMOVE_RECURSE
  "CMakeFiles/fig03_04_low_conflict.dir/fig03_04_low_conflict.cc.o"
  "CMakeFiles/fig03_04_low_conflict.dir/fig03_04_low_conflict.cc.o.d"
  "fig03_04_low_conflict"
  "fig03_04_low_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_04_low_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
