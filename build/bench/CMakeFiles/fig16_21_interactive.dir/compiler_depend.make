# Empty compiler generated dependencies file for fig16_21_interactive.
# This may be replaced when dependencies are built.
