file(REMOVE_RECURSE
  "CMakeFiles/fig16_21_interactive.dir/fig16_21_interactive.cc.o"
  "CMakeFiles/fig16_21_interactive.dir/fig16_21_interactive.cc.o.d"
  "fig16_21_interactive"
  "fig16_21_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_21_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
