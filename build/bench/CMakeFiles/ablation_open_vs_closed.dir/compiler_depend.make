# Empty compiler generated dependencies file for ablation_open_vs_closed.
# This may be replaced when dependencies are built.
