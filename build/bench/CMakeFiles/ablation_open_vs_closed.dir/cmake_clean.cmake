file(REMOVE_RECURSE
  "CMakeFiles/ablation_open_vs_closed.dir/ablation_open_vs_closed.cc.o"
  "CMakeFiles/ablation_open_vs_closed.dir/ablation_open_vs_closed.cc.o.d"
  "ablation_open_vs_closed"
  "ablation_open_vs_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_open_vs_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
