# Empty dependencies file for ccsim_bench_harness.
# This may be replaced when dependencies are built.
