file(REMOVE_RECURSE
  "libccsim_bench_harness.a"
)
