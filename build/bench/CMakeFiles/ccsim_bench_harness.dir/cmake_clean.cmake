file(REMOVE_RECURSE
  "CMakeFiles/ccsim_bench_harness.dir/harness.cc.o"
  "CMakeFiles/ccsim_bench_harness.dir/harness.cc.o.d"
  "libccsim_bench_harness.a"
  "libccsim_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccsim_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
