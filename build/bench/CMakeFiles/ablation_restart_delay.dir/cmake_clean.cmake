file(REMOVE_RECURSE
  "CMakeFiles/ablation_restart_delay.dir/ablation_restart_delay.cc.o"
  "CMakeFiles/ablation_restart_delay.dir/ablation_restart_delay.cc.o.d"
  "ablation_restart_delay"
  "ablation_restart_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restart_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
