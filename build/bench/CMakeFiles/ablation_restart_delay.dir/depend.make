# Empty dependencies file for ablation_restart_delay.
# This may be replaced when dependencies are built.
