# Empty compiler generated dependencies file for fig11_adaptive_delays.
# This may be replaced when dependencies are built.
