file(REMOVE_RECURSE
  "CMakeFiles/fig11_adaptive_delays.dir/fig11_adaptive_delays.cc.o"
  "CMakeFiles/fig11_adaptive_delays.dir/fig11_adaptive_delays.cc.o.d"
  "fig11_adaptive_delays"
  "fig11_adaptive_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_adaptive_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
