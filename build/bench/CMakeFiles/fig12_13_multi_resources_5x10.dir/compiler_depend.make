# Empty compiler generated dependencies file for fig12_13_multi_resources_5x10.
# This may be replaced when dependencies are built.
