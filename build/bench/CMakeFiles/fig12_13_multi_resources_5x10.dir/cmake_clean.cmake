file(REMOVE_RECURSE
  "CMakeFiles/fig12_13_multi_resources_5x10.dir/fig12_13_multi_resources_5x10.cc.o"
  "CMakeFiles/fig12_13_multi_resources_5x10.dir/fig12_13_multi_resources_5x10.cc.o.d"
  "fig12_13_multi_resources_5x10"
  "fig12_13_multi_resources_5x10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_13_multi_resources_5x10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
