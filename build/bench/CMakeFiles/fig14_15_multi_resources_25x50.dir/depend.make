# Empty dependencies file for fig14_15_multi_resources_25x50.
# This may be replaced when dependencies are built.
