file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_multi_resources_25x50.dir/fig14_15_multi_resources_25x50.cc.o"
  "CMakeFiles/fig14_15_multi_resources_25x50.dir/fig14_15_multi_resources_25x50.cc.o.d"
  "fig14_15_multi_resources_25x50"
  "fig14_15_multi_resources_25x50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_multi_resources_25x50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
