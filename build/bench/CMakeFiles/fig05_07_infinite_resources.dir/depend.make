# Empty dependencies file for fig05_07_infinite_resources.
# This may be replaced when dependencies are built.
