file(REMOVE_RECURSE
  "CMakeFiles/fig05_07_infinite_resources.dir/fig05_07_infinite_resources.cc.o"
  "CMakeFiles/fig05_07_infinite_resources.dir/fig05_07_infinite_resources.cc.o.d"
  "fig05_07_infinite_resources"
  "fig05_07_infinite_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_07_infinite_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
