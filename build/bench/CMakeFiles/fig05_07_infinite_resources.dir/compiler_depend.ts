# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_07_infinite_resources.
