file(REMOVE_RECURSE
  "CMakeFiles/fig08_10_limited_resources.dir/fig08_10_limited_resources.cc.o"
  "CMakeFiles/fig08_10_limited_resources.dir/fig08_10_limited_resources.cc.o.d"
  "fig08_10_limited_resources"
  "fig08_10_limited_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_10_limited_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
