# Empty compiler generated dependencies file for fig08_10_limited_resources.
# This may be replaced when dependencies are built.
