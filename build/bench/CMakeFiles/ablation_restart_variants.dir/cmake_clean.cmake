file(REMOVE_RECURSE
  "CMakeFiles/ablation_restart_variants.dir/ablation_restart_variants.cc.o"
  "CMakeFiles/ablation_restart_variants.dir/ablation_restart_variants.cc.o.d"
  "ablation_restart_variants"
  "ablation_restart_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_restart_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
