# Empty dependencies file for ablation_restart_variants.
# This may be replaced when dependencies are built.
