# Empty dependencies file for ablation_upgrade_policy.
# This may be replaced when dependencies are built.
