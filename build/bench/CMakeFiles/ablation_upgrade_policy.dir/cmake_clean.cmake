file(REMOVE_RECURSE
  "CMakeFiles/ablation_upgrade_policy.dir/ablation_upgrade_policy.cc.o"
  "CMakeFiles/ablation_upgrade_policy.dir/ablation_upgrade_policy.cc.o.d"
  "ablation_upgrade_policy"
  "ablation_upgrade_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_upgrade_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
