# Empty dependencies file for ablation_buffer_log.
# This may be replaced when dependencies are built.
