file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_log.dir/ablation_buffer_log.cc.o"
  "CMakeFiles/ablation_buffer_log.dir/ablation_buffer_log.cc.o.d"
  "ablation_buffer_log"
  "ablation_buffer_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
