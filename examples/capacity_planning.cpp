// Capacity planning: how many CPUs and disks does it take before a
// restart-oriented algorithm becomes the right choice? (The paper's
// Experiment 4 question, posed the way a database-machine designer would.)
//
//   ./capacity_planning [key=value ...]   e.g. write_prob=0.5 db_size=500
//
// For each hardware configuration, finds each algorithm's best throughput
// across the mpl sweep — the operating point a well-tuned system would run
// at — and reports the winner and the resource cost of the win.
#include <iostream>
#include <string>
#include <vector>

#include "analytic/mva.h"
#include "core/experiment.h"
#include "core/report.h"
#include "util/config.h"
#include "util/str.h"

int main(int argc, char** argv) {
  ccsim::Config config;
  std::string error;
  if (!config.ParseArgs(std::vector<std::string>(argv + 1, argv + argc),
                        &error)) {
    std::cerr << "usage: capacity_planning [key=value ...]\n" << error << "\n";
    return 1;
  }

  ccsim::EngineConfig base;
  base.workload.ApplyConfig(config);
  base.seed = static_cast<uint64_t>(config.GetIntOr("seed", 42));

  ccsim::RunLengths lengths = ccsim::RunLengths::FromEnv([] {
    ccsim::RunLengths defaults;
    defaults.batches = 6;
    defaults.batch_length = ccsim::FromSeconds(15);
    defaults.warmup = ccsim::FromSeconds(30);
    return defaults;
  }());

  struct Hardware {
    int cpus, disks;
  };
  const std::vector<Hardware> configs = {{1, 2}, {5, 10}, {25, 50}};
  const std::vector<int> mpls = {10, 25, 50, 100, 200};

  std::cout << "Capacity planning: best-tuned throughput per hardware size\n";
  std::vector<ccsim::MetricsReport> all;
  for (const Hardware& hw : configs) {
    // Analytical first cut: where the hardware saturates if concurrency
    // control cost nothing (no blocking, no restarts).
    ccsim::MvaSolver solver = ccsim::BuildPaperNetwork(
        base.workload, ccsim::ResourceConfig::Finite(hw.cpus, hw.disks));
    std::cout << ccsim::StringPrintf(
        "\n%d CPU(s), %d disk(s)  [contention-free ceiling %.1f tps]:\n",
        hw.cpus, hw.disks, solver.BottleneckThroughput());
    std::string winner;
    double winner_tps = -1.0;
    for (const std::string& algorithm : ccsim::PaperAlgorithms()) {
      double best_tps = 0.0;
      int best_mpl = 0;
      double best_useful = 0.0;
      for (int mpl : mpls) {
        ccsim::EngineConfig point = base;
        point.resources = ccsim::ResourceConfig::Finite(hw.cpus, hw.disks);
        point.algorithm = algorithm;
        point.workload.mpl = mpl;
        ccsim::MetricsReport r = ccsim::RunOnePoint(point, lengths);
        if (r.throughput.mean > best_tps) {
          best_tps = r.throughput.mean;
          best_mpl = mpl;
          best_useful = r.disk_util_useful.mean;
        }
        r.algorithm =
            ccsim::StringPrintf("%s %dx%d", algorithm.c_str(), hw.cpus, hw.disks);
        all.push_back(r);
      }
      std::cout << ccsim::StringPrintf(
          "  %-18s best %7.2f tps at mpl=%-3d (useful disk util %.0f%%)\n",
          algorithm.c_str(), best_tps, best_mpl, 100 * best_useful);
      if (best_tps > winner_tps) {
        winner_tps = best_tps;
        winner = algorithm;
      }
    }
    std::cout << "  => winner: " << winner << "\n";
  }

  std::cout << "\nThe paper's conclusion: blocking wins while utilization is\n"
               "medium-to-high; only when enough hardware sits idle (useful\n"
               "utilization ~30%) does optimistic cc pull ahead.\n";

  std::string csv = ccsim::CsvPathFor("capacity_planning");
  if (!csv.empty() && ccsim::WriteReportCsv(csv, all)) {
    std::cout << "(csv: " << csv << ")\n";
  }
  return 0;
}
