// Adaptive multiprogramming-level control, live: starts a contended blocking
// system at a deliberately bad mpl and watches the hill-climbing controller
// walk it toward the knee of the throughput curve, printing one line per
// adjustment window. Demonstrates the library's dynamic SetMpl API and the
// paper's "open problem" extension.
//
//   ./adaptive_mpl_demo [key=value ...]   e.g. start_mpl=200 interval=20
#include <iostream>
#include <string>
#include <vector>

#include "core/adaptive_mpl.h"
#include "core/closed_system.h"
#include "sim/simulator.h"
#include "util/config.h"
#include "util/str.h"

int main(int argc, char** argv) {
  ccsim::Config config;
  std::string error;
  if (!config.ParseArgs(std::vector<std::string>(argv + 1, argv + argc),
                        &error)) {
    std::cerr << "usage: adaptive_mpl_demo [key=value ...]\n" << error << "\n";
    return 1;
  }

  ccsim::EngineConfig engine_config;
  engine_config.workload.ApplyConfig(config);
  engine_config.workload.mpl =
      static_cast<int>(config.GetIntOr("start_mpl", 200));
  engine_config.resources = ccsim::ResourceConfig::Finite(
      static_cast<int>(config.GetIntOr("num_cpus", 1)),
      static_cast<int>(config.GetIntOr("num_disks", 2)));
  engine_config.algorithm = config.GetStringOr("algorithm", "blocking");
  engine_config.seed = static_cast<uint64_t>(config.GetIntOr("seed", 42));

  ccsim::SimTime interval =
      ccsim::FromSeconds(config.GetDoubleOr("interval", 30.0));
  double horizon_s = config.GetDoubleOr("horizon", 900.0);

  ccsim::Simulator sim;
  ccsim::ClosedSystem system(&sim, engine_config);

  ccsim::AdaptiveMplController::Options options;
  options.interval = interval;
  options.min_mpl = static_cast<int>(config.GetIntOr("min_mpl", 5));
  options.max_mpl = engine_config.workload.mpl;
  options.step = static_cast<int>(config.GetIntOr("step", 10));
  ccsim::AdaptiveMplController controller(&sim, &system, options);

  std::cout << "Adaptive mpl control: " << engine_config.algorithm
            << " starting at mpl=" << engine_config.workload.mpl << " on "
            << engine_config.resources.num_cpus << " CPU(s) / "
            << engine_config.resources.num_disks << " disk(s)\n"
            << ccsim::StringPrintf("%10s %6s %10s %10s %10s\n", "sim_time",
                                   "mpl", "tput(tps)", "commits", "restarts");

  system.Prime();
  controller.Start();

  int64_t last_commits = 0;
  for (ccsim::SimTime t = interval; ccsim::ToSeconds(t) <= horizon_s;
       t += interval) {
    sim.RunUntil(t);
    int64_t commits = system.total_commits();
    double tps = static_cast<double>(commits - last_commits) /
                 ccsim::ToSeconds(interval);
    last_commits = commits;
    std::cout << ccsim::StringPrintf(
        "%9.0fs %6d %10.2f %10lld %10lld\n", ccsim::ToSeconds(t), system.mpl(),
        tps, static_cast<long long>(commits),
        static_cast<long long>(system.total_restarts()));
  }

  std::cout << "\nfinal mpl: " << system.mpl() << " ("
            << controller.adjustments_made() << " adjustments)\n"
            << "The controller needs no model of the workload: it climbs the\n"
            << "observed throughput gradient, the paper's suggested remedy\n"
            << "for mpl-induced thrashing.\n";
  return 0;
}
