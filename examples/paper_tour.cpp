// A guided tour of the paper's argument, in five quick experiments.
//
//   ./paper_tour            (~a minute; CCSIM_* env vars scale effort)
//
// Each stop runs a scaled-down version of one of the paper's experiments
// and narrates what the numbers mean. For publication-quality runs use the
// bench binaries, which apply the full 20-batch methodology.
#include <iostream>
#include <string>

#include "analytic/lock_contention.h"
#include "core/experiment.h"
#include "util/str.h"

namespace {

ccsim::RunLengths TourLengths() {
  ccsim::RunLengths lengths;
  lengths.batches = 6;
  lengths.batch_length = ccsim::FromSeconds(10);
  lengths.warmup = ccsim::FromSeconds(20);
  return ccsim::RunLengths::FromEnv(lengths);
}

double Throughput(const std::string& algorithm, int mpl,
                  ccsim::ResourceConfig resources,
                  ccsim::SimTime int_think = 0,
                  ccsim::SimTime ext_think = ccsim::kSecond,
                  int64_t db_size = 1000) {
  ccsim::EngineConfig config;
  config.algorithm = algorithm;
  config.workload.mpl = mpl;
  config.workload.int_think_time = int_think;
  config.workload.ext_think_time = ext_think;
  config.workload.db_size = db_size;
  config.resources = resources;
  return ccsim::RunOnePoint(config, TourLengths()).throughput.mean;
}

void Say(const std::string& text) { std::cout << text << "\n"; }

}  // namespace

int main() {
  using namespace ccsim;
  Say("ccsim paper tour — Agrawal, Carey & Livny, SIGMOD 1985");
  Say("=======================================================");

  Say("\n[1/5] When conflicts are rare, concurrency control barely matters.");
  {
    double b = Throughput("blocking", 25, ResourceConfig::Finite(1, 2), 0,
                          kSecond, 10000);
    double o = Throughput("optimistic", 25, ResourceConfig::Finite(1, 2), 0,
                          kSecond, 10000);
    Say(StringPrintf("      db of 10,000 pages: blocking %.2f tps, "
                     "optimistic %.2f tps — a wash.",
                     b, o));
  }

  Say("\n[2/5] With INFINITE resources, restarts are free and blocking");
  Say("      thrashes: this is the world where optimistic cc wins.");
  {
    double b = Throughput("blocking", 200, ResourceConfig::Infinite());
    double o = Throughput("optimistic", 200, ResourceConfig::Infinite());
    Say(StringPrintf("      mpl=200: blocking %.2f tps vs optimistic %.2f tps "
                     "(%.1fx).",
                     b, o, o / b));
  }

  Say("\n[3/5] On REAL hardware (1 CPU, 2 disks) every wasted restart is");
  Say("      paid for in disk time someone else needed: blocking wins.");
  {
    double b = Throughput("blocking", 25, ResourceConfig::Finite(1, 2));
    double o = Throughput("optimistic", 25, ResourceConfig::Finite(1, 2));
    Say(StringPrintf("      mpl=25: blocking %.2f tps vs optimistic %.2f tps.",
                     b, o));
    Say("      Same algorithms as stop 2 — only the resource model changed.");
    Say("      This is the paper's resolution of the contradictory studies.");
  }

  Say("\n[4/5] Buy 25 CPUs and 50 disks and utilizations drop to ~30%:");
  Say("      the system starts behaving as if resources were infinite.");
  {
    double b = Throughput("blocking", 100, ResourceConfig::Finite(25, 50));
    double o = Throughput("optimistic", 100, ResourceConfig::Finite(25, 50));
    Say(StringPrintf("      mpl=100: blocking %.2f tps vs optimistic %.2f tps.",
                     b, o));
  }

  Say("\n[5/5] Interactive users who think 10s while holding locks starve a");
  Say("      lock-based system; optimistic cc shrugs (old data stays");
  Say("      readable, wasted work is cheap at low utilization).");
  {
    double b = Throughput("blocking", 50, ResourceConfig::Finite(1, 2),
                          10 * kSecond, 21 * kSecond);
    double o = Throughput("optimistic", 50, ResourceConfig::Finite(1, 2),
                          10 * kSecond, 21 * kSecond);
    Say(StringPrintf("      10 s think: blocking %.2f tps vs optimistic "
                     "%.2f tps.",
                     b, o));
  }

  Say("\nCoda: the analytical view. A three-line mean-value model of");
  Say("blocking predicts the knee the simulator measures:");
  {
    LockContentionModel model(WorkloadParams{}, ResourceConfig::Infinite());
    for (int mpl : {25, 75, 200}) {
      LockContentionResult r = model.Solve(mpl);
      Say(StringPrintf("      mpl=%-3d predicted %6.1f tps, %.2f blocks/txn%s",
                       mpl, r.throughput, r.blocks_per_txn,
                       r.thrashing ? "  <- analytic thrashing criterion" : ""));
    }
  }
  Say("\nConclusion (the paper's): the right concurrency control algorithm");
  Say("is a property of the RESOURCE MODEL, not of the algorithms alone.");
  Say("Low utilization -> restarts are cheap -> optimistic; realistic");
  Say("utilization -> wasted work hurts -> blocking, with a controlled mpl.");
  return 0;
}
