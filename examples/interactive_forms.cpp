// Interactive form-screen application study (the paper's Experiment 5
// motivation): users pull up a form (reads), stare at it, then hit enter
// (writes). How long may users think before optimistic concurrency control
// beats two-phase locking on ordinary hardware?
//
//   ./interactive_forms [key=value ...]    e.g. mpl=50 num_cpus=1 num_disks=2
//
// Sweeps the internal think time and reports the winner at each setting.
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "util/config.h"
#include "util/str.h"

int main(int argc, char** argv) {
  ccsim::Config config;
  std::string error;
  if (!config.ParseArgs(std::vector<std::string>(argv + 1, argv + argc),
                        &error)) {
    std::cerr << "usage: interactive_forms [key=value ...]\n" << error << "\n";
    return 1;
  }

  ccsim::EngineConfig base;
  base.workload.mpl = static_cast<int>(config.GetIntOr("mpl", 50));
  base.workload.ApplyConfig(config);
  base.resources = ccsim::ResourceConfig::Finite(
      static_cast<int>(config.GetIntOr("num_cpus", 1)),
      static_cast<int>(config.GetIntOr("num_disks", 2)));
  base.seed = static_cast<uint64_t>(config.GetIntOr("seed", 42));

  ccsim::RunLengths lengths = ccsim::RunLengths::FromEnv([] {
    ccsim::RunLengths defaults;
    defaults.batches = 8;
    defaults.batch_length = ccsim::FromSeconds(30);
    defaults.warmup = ccsim::FromSeconds(60);
    return defaults;
  }());

  // Internal/external think pairs keep the thinking:active ratio roughly
  // fixed, as in the paper's Experiment 5.
  struct Setting {
    double int_think_s, ext_think_s;
  };
  const std::vector<Setting> settings = {
      {0.0, 1.0}, {1.0, 3.0}, {5.0, 11.0}, {10.0, 21.0}};

  std::vector<ccsim::MetricsReport> all;
  std::cout << "Interactive form-screen study: when does user think time make\n"
               "locking lose to optimistic cc? (mpl="
            << base.workload.mpl << ", " << base.resources.num_cpus
            << " CPU(s), " << base.resources.num_disks << " disk(s))\n";

  for (const Setting& s : settings) {
    ccsim::EngineConfig point = base;
    point.workload.int_think_time = ccsim::FromSeconds(s.int_think_s);
    point.workload.ext_think_time = ccsim::FromSeconds(s.ext_think_s);

    double best_blocking = 0.0, best_optimistic = 0.0;
    for (const std::string& algorithm : {std::string("blocking"),
                                         std::string("optimistic")}) {
      point.algorithm = algorithm;
      ccsim::MetricsReport r = ccsim::RunOnePoint(point, lengths);
      r.algorithm = ccsim::StringPrintf("%s @think=%.0fs", algorithm.c_str(),
                                        s.int_think_s);
      (algorithm == "blocking" ? best_blocking : best_optimistic) =
          r.throughput.mean;
      all.push_back(r);
    }
    const char* winner = best_blocking >= best_optimistic ? "blocking wins"
                                                          : "OPTIMISTIC wins";
    std::cout << ccsim::StringPrintf(
        "  think %5.1fs: blocking %6.2f tps vs optimistic %6.2f tps -> %s\n",
        s.int_think_s, best_blocking, best_optimistic, winner);
  }

  ccsim::PrintReportTable(std::cout, "full metrics", all);
  std::cout << "\nLong think times hold locks across user dead time; once the\n"
               "disks are mostly idle, wasted optimistic re-execution is\n"
               "cheaper than blocked lock queues (paper, Experiment 5).\n";
  return 0;
}
