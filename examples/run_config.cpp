// Generic experiment driver: run any sweep described by a config file (or
// inline key=value overrides) and print/emit the results. This is the
// downstream-user entry point: reproduce any paper figure, or explore a new
// region of the model, without writing C++.
//
//   ./run_config my_experiment.cfg
//   ./run_config algorithms=blocking,mvto mpls=10,50,200 num_cpus=5
//                num_disks=10 hot_fraction_db=0.2 hot_access_prob=0.8
//   (one shell line; shown wrapped here)
//
// Recognized keys: every Table 1 workload parameter (db_size, tran_size,
// min_size, max_size, write_prob, num_terms, mpl, ext_think_time,
// int_think_time, obj_io_ms, obj_cpu_ms, cc_cpu_ms, hot_fraction_db,
// hot_access_prob, read_only_fraction) plus:
//   algorithms       comma list (default: the paper's three)
//   mpls             comma list (default: the paper's sweep)
//   num_cpus/num_disks or infinite=true
//   restart_delay    none | fixed | adaptive (default: per-algorithm)
//   fixed_delay_s    mean of the fixed delay
//   victim           youngest | oldest | fewest_locks
//   source           closed | open;  arrival_rate (tps, for open)
//   x_lock_on_read_intent  true|false
//   audit            true|false (or --audit): runtime invariant auditing +
//                    replay digest (docs/AUDIT.md); any detected violation
//                    fails the run with a nonzero exit
//   obs              true|false: per-phase response breakdown + stats
//                    registry (docs/OBSERVABILITY.md)
//   trace            directory for Perfetto trace.json files (implies obs)
//   sample_interval  time-series sampling period in simulated seconds
//                    (implies obs; CSVs land next to csv=, or in ".")
//   faults           fault-injection plan ("journal.kill@hit:2;seed=7" —
//                    docs/FAULTS.md; CCSIM_FAULTS overrides)
//   disk_fault       simulated fault window on every disk, as
//                    kind:start_s:end_s with kind stall|outage
//   cpu_fault        same window syntax, on the CPU pool
//   seed, batches, batch_seconds, warmup_seconds, csv=<path>, title=<text>
//
// --trace[=path] streams the transaction lifecycle trace (one line per
// submit/block/resume/restart/commit) to stderr or to `path` while the sweep
// runs; it forces jobs=1 so lines from different points never interleave.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "inject/fault.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/str.h"

namespace {

constexpr char kUsage[] =
    "usage: run_config [<config-file> | key=value ...] [--audit] [--help]\n"
    "\n"
    "Runs the sweep described by a config file, or by inline key=value\n"
    "overrides. Recognized keys:\n"
    "  workload:   db_size tran_size min_size max_size write_prob num_terms\n"
    "              mpl ext_think_time int_think_time obj_io_ms obj_cpu_ms\n"
    "              cc_cpu_ms buffer_hit_prob log_io_ms hot_fraction_db\n"
    "              hot_access_prob read_only_fraction\n"
    "  resources:  num_cpus num_disks infinite\n"
    "  algorithm:  algorithms mpls restart_delay fixed_delay_s victim\n"
    "              source arrival_rate x_lock_on_read_intent audit\n"
    "  run:        seed batches batch_seconds warmup_seconds csv title\n"
    "              percentiles columns obs trace sample_interval\n"
    "  faults:     faults (injection plan, docs/FAULTS.md), disk_fault and\n"
    "              cpu_fault (simulated windows, kind:start_s:end_s with\n"
    "              kind stall|outage)\n"
    "\n"
    "Flags: --audit (same as audit=true), --faults=<plan> (same as\n"
    "faults=<plan>), --columns=<list> (same as columns=<list>: report table\n"
    "column groups — response, percentiles, ratios, disk, cpu, mpl, phases,\n"
    "blame, or all; a typo is a hard error; CCSIM_REPORT_COLUMNS, if set,\n"
    "overrides), --trace[=path] (stream the transaction lifecycle trace\n"
    "to stderr or to <path>; forces jobs=1), --help.\n"
    "Environment: CCSIM_JOBS, CCSIM_JOURNAL, CCSIM_MAX_EVENTS,\n"
    "CCSIM_POINT_TIMEOUT_SECONDS, CCSIM_OBS, CCSIM_SAMPLE_SECONDS,\n"
    "CCSIM_TRACE, CCSIM_HEARTBEAT_SECONDS, CCSIM_REPORT_COLUMNS,\n"
    "CCSIM_FAULTS and friends (docs/EXECUTION.md, docs/OBSERVABILITY.md,\n"
    "docs/FAULTS.md).\n";

/// Every key this driver or WorkloadParams::ApplyConfig understands; any
/// other key is a spelling mistake that would otherwise silently change the
/// experiment being run.
const std::set<std::string>& KnownKeys() {
  static const std::set<std::string> keys = {
      "db_size", "tran_size", "min_size", "max_size", "write_prob",
      "num_terms", "mpl", "ext_think_time", "int_think_time", "obj_io_ms",
      "obj_cpu_ms", "cc_cpu_ms", "buffer_hit_prob", "log_io_ms",
      "hot_fraction_db", "hot_access_prob", "read_only_fraction",
      "num_cpus", "num_disks", "infinite",
      "algorithms", "mpls", "restart_delay", "fixed_delay_s", "victim",
      "source", "arrival_rate", "x_lock_on_read_intent", "audit",
      "seed", "batches", "batch_seconds", "warmup_seconds", "csv", "title",
      "percentiles", "columns", "obs", "trace", "sample_interval",
      "faults", "disk_fault", "cpu_fault",
  };
  return keys;
}

/// Parses a simulated fault window: kind:start_s:end_s (docs/FAULTS.md).
bool ParseFaultWindow(const std::string& text, ccsim::FaultWindow* out,
                      std::string* error) {
  const std::vector<std::string> fields = ccsim::Split(text, ':');
  if (fields.size() != 3) {
    *error = "expected kind:start_s:end_s";
    return false;
  }
  if (fields[0] == "stall") {
    out->kind = ccsim::FaultWindowKind::kStall;
  } else if (fields[0] == "outage") {
    out->kind = ccsim::FaultWindowKind::kOutage;
  } else {
    *error = "kind must be stall or outage";
    return false;
  }
  auto start = ccsim::ParseDouble(fields[1]);
  auto end = ccsim::ParseDouble(fields[2]);
  if (!start.has_value() || !end.has_value() || *start < 0.0 ||
      *end <= *start) {
    *error = "need 0 <= start_s < end_s";
    return false;
  }
  out->start = ccsim::FromSeconds(*start);
  out->end = ccsim::FromSeconds(*end);
  return true;
}

std::vector<int> ParseIntList(const std::string& text) {
  std::vector<int> values;
  for (const std::string& field : ccsim::Split(text, ',')) {
    auto parsed = ccsim::ParseInt(field);
    if (!parsed.has_value()) {
      std::cerr << "bad integer in list: " << field << "\n";
      std::exit(1);
    }
    values.push_back(static_cast<int>(*parsed));
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  ccsim::Config config;
  std::string error;
  bool lifecycle_trace = false;
  std::string lifecycle_trace_path;
  std::vector<std::string> args(argv + 1, argv + argc);
  args.erase(std::remove_if(args.begin(), args.end(),
                            [&](const std::string& arg) {
                              if (arg == "--trace") {
                                lifecycle_trace = true;
                                return true;
                              }
                              if (ccsim::StartsWith(arg, "--trace=")) {
                                lifecycle_trace = true;
                                lifecycle_trace_path =
                                    arg.substr(std::string("--trace=").size());
                                return true;
                              }
                              return false;
                            }),
             args.end());
  for (std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--audit") {
      arg = "audit=true";
    } else if (ccsim::StartsWith(arg, "--faults=")) {
      arg = arg.substr(2);  // --faults=SPEC is sugar for faults=SPEC.
    } else if (ccsim::StartsWith(arg, "--columns=")) {
      arg = arg.substr(2);  // --columns=LIST is sugar for columns=LIST.
    } else if (ccsim::StartsWith(arg, "--")) {
      std::cerr << "unknown flag: " << arg << "\n\n" << kUsage;
      return 2;
    }
  }

  // A single non-key=value argument is a config file path.
  if (args.size() == 1 && args[0].find('=') == std::string::npos) {
    std::ifstream in(args[0]);
    if (!in.good()) {
      std::cerr << "cannot open config file " << args[0] << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!config.ParseText(text.str(), &error)) {
      std::cerr << args[0] << ": " << error << "\n";
      return 1;
    }
  } else if (!config.ParseArgs(args, &error)) {
    std::cerr << error << "\n\n" << kUsage;
    return 2;
  }

  for (const auto& [key, value] : config.entries()) {
    if (KnownKeys().count(key) == 0) {
      std::cerr << "unknown key: " << key << "=" << value << "\n\n" << kUsage;
      return 2;
    }
  }

  ccsim::SweepConfig sweep;
  sweep.base.workload.ApplyConfig(config);

  if (config.GetBoolOr("infinite", false)) {
    sweep.base.resources = ccsim::ResourceConfig::Infinite();
  } else {
    sweep.base.resources = ccsim::ResourceConfig::Finite(
        static_cast<int>(config.GetIntOr("num_cpus", 1)),
        static_cast<int>(config.GetIntOr("num_disks", 2)));
  }

  // Simulated resource-fault windows (docs/FAULTS.md, "Fault windows").
  struct WindowKey {
    const char* key;
    ccsim::FaultWindow* slot;
  };
  for (const WindowKey& wk :
       {WindowKey{"disk_fault", &sweep.base.resources.disk_fault},
        WindowKey{"cpu_fault", &sweep.base.resources.cpu_fault}}) {
    const std::string spec = config.GetStringOr(wk.key, "");
    if (spec.empty()) continue;
    std::string window_error;
    if (!ParseFaultWindow(spec, wk.slot, &window_error)) {
      std::cerr << wk.key << "=" << spec << ": " << window_error << "\n";
      return 1;
    }
  }

  // Fault-injection plan (docs/FAULTS.md). Installed before the sweep so
  // sites fire from the first point; CCSIM_FAULTS, if also set, overrides
  // when the runner reads the environment.
  const std::string faults_spec = config.GetStringOr("faults", "");
  if (!faults_spec.empty()) {
    ccsim::StatusOr<ccsim::FaultPlan> plan =
        ccsim::FaultPlan::Parse(faults_spec);
    if (!plan.ok()) {
      std::cerr << "faults=" << faults_spec << ": "
                << plan.status().ToString() << "\n";
      return 1;
    }
    ccsim::InstallFaultPlan(*plan);
  }

  std::string delay = config.GetStringOr("restart_delay", "");
  if (delay == "none") {
    sweep.base.restart_delay_mode = ccsim::RestartDelayMode::kNone;
  } else if (delay == "fixed") {
    sweep.base.restart_delay_mode = ccsim::RestartDelayMode::kFixed;
    sweep.base.fixed_restart_delay =
        ccsim::FromSeconds(config.GetDoubleOr("fixed_delay_s", 1.0));
  } else if (delay == "adaptive") {
    sweep.base.restart_delay_mode = ccsim::RestartDelayMode::kAdaptive;
  } else if (!delay.empty()) {
    std::cerr << "unknown restart_delay: " << delay << "\n";
    return 1;
  }

  std::string victim = config.GetStringOr("victim", "youngest");
  if (victim == "youngest") {
    sweep.base.victim_policy = ccsim::VictimPolicy::kYoungest;
  } else if (victim == "oldest") {
    sweep.base.victim_policy = ccsim::VictimPolicy::kOldest;
  } else if (victim == "fewest_locks") {
    sweep.base.victim_policy = ccsim::VictimPolicy::kFewestLocks;
  } else {
    std::cerr << "unknown victim policy: " << victim << "\n";
    return 1;
  }

  std::string source = config.GetStringOr("source", "closed");
  if (source == "open") {
    sweep.base.source_mode = ccsim::SourceMode::kOpen;
    sweep.base.arrival_rate = config.GetDoubleOr("arrival_rate", 0.0);
  } else if (source != "closed") {
    std::cerr << "unknown source mode: " << source << "\n";
    return 1;
  }
  sweep.base.x_lock_on_read_intent =
      config.GetBoolOr("x_lock_on_read_intent", false);
  sweep.base.audit = config.GetBoolOr("audit", sweep.base.audit);
  sweep.base.seed = static_cast<uint64_t>(config.GetIntOr("seed", 42));

  const std::string csv = config.GetStringOr("csv", "");
  sweep.base.obs.enabled = config.GetBoolOr("obs", false);
  std::string perfetto_dir = config.GetStringOr("trace", "");
  if (!perfetto_dir.empty()) {
    sweep.base.obs.enabled = true;
    sweep.base.obs.trace_dir = perfetto_dir;
  }
  double sample_interval = config.GetDoubleOr("sample_interval", 0.0);
  if (sample_interval < 0.0) {
    std::cerr << "sample_interval must be >= 0\n";
    return 1;
  }
  if (sample_interval > 0.0) {
    sweep.base.obs.enabled = true;
    sweep.base.obs.sample_interval = ccsim::FromSeconds(sample_interval);
    // Time-series CSVs land next to the sweep CSV, or in the cwd.
    auto slash = csv.find_last_of('/');
    sweep.base.obs.sample_dir =
        slash == std::string::npos ? "." : csv.substr(0, slash);
  }

  std::unique_ptr<std::ofstream> trace_file;
  std::unique_ptr<ccsim::StreamTraceSink> trace_sink;
  if (lifecycle_trace) {
    std::ostream* out = &std::cerr;
    if (!lifecycle_trace_path.empty()) {
      trace_file = std::make_unique<std::ofstream>(lifecycle_trace_path,
                                                   std::ios::trunc);
      if (!trace_file->good()) {
        std::cerr << "cannot open trace file " << lifecycle_trace_path << "\n";
        return 1;
      }
      out = trace_file.get();
    }
    trace_sink = std::make_unique<ccsim::StreamTraceSink>(out);
    sweep.base.lifecycle_sink = trace_sink.get();
    // One worker: lifecycle lines from concurrent points would interleave
    // into an unreadable (and nondeterministically ordered) stream.
    sweep.jobs = 1;
  }

  sweep.algorithms = ccsim::Split(
      config.GetStringOr("algorithms", "blocking,immediate_restart,optimistic"),
      ',');
  sweep.mpls = config.Has("mpls") ? ParseIntList(*config.GetString("mpls"))
                                  : ccsim::PaperMplLevels();

  sweep.lengths.batches = static_cast<int>(config.GetIntOr("batches", 10));
  sweep.lengths.batch_length =
      ccsim::FromSeconds(config.GetDoubleOr("batch_seconds", 15.0));
  sweep.lengths.warmup =
      ccsim::FromSeconds(config.GetDoubleOr("warmup_seconds", 30.0));
  sweep.lengths = ccsim::RunLengths::FromEnv(sweep.lengths);

  // The checked runner: a failed point (bad parameter combination, check
  // trip, watchdog budget) is reported and skipped while the rest of the
  // sweep still completes and prints.
  ccsim::SweepOutcome outcome =
      ccsim::RunSweepChecked(sweep, [](const ccsim::PointResult& point) {
        if (point.ok()) {
          std::cerr << "  " << point.report.algorithm
                    << " mpl=" << point.report.mpl << ": "
                    << point.report.throughput.mean << " tps"
                    << (point.from_journal ? " [journal]" : "") << "\n";
        } else {
          std::cerr << "  " << point.config.algorithm
                    << " mpl=" << point.config.workload.mpl
                    << ": FAILED: " << point.status.ToString() << "\n";
        }
      });
  auto reports = outcome.SuccessfulReports();

  int64_t audit_violations = 0;
  for (const ccsim::MetricsReport& r : reports) {
    if (!r.audited) continue;
    audit_violations += r.audit_violations;
    std::cerr << "  [audit] " << r.algorithm << " mpl=" << r.mpl << ": "
              << r.audit_checks << " checks, " << r.audit_violations
              << " violation(s), digest " << std::hex << r.replay_digest
              << std::dec << "\n";
  }

  // columns= replaces the default column set (CCSIM_REPORT_COLUMNS, applied
  // inside PrintReportTable, still wins when set). A typo in the list is a
  // hard error, same as the env knob.
  ccsim::ReportColumns columns;
  const std::string columns_spec = config.GetStringOr("columns", "");
  if (!columns_spec.empty()) {
    columns = ccsim::ReportColumns::Parse(columns_spec);
  } else {
    columns.percentiles = config.GetBoolOr("percentiles", false);
  }
  ccsim::PrintReportTable(std::cout,
                          config.GetStringOr("title", "run_config sweep"),
                          reports, columns);

  if (!csv.empty()) {
    if (!ccsim::WriteReportCsv(csv, reports)) {
      std::cerr << "failed to write " << csv << "\n";
      return 1;
    }
    std::cout << "(csv: " << csv << ")\n";
  }
  if (audit_violations > 0) {
    std::cerr << "audit: " << audit_violations << " invariant violation(s)\n";
    return 2;
  }
  if (!outcome.ok()) {
    std::cerr << "sweep completed with failures:\n" << outcome.FailureSummary();
    return 1;
  }
  return 0;
}
