// Quickstart: simulate the paper's baseline system (1 CPU, 2 disks, Table 2
// workload) under each of the three concurrency control algorithms and print
// the headline metrics.
//
//   ./quickstart [key=value ...]
//
// Any workload parameter can be overridden on the command line, e.g.
//   ./quickstart mpl=25 write_prob=0.5 db_size=5000
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "util/config.h"

int main(int argc, char** argv) {
  ccsim::Config config;
  std::string error;
  if (!config.ParseArgs(std::vector<std::string>(argv + 1, argv + argc),
                        &error)) {
    std::cerr << "usage: quickstart [key=value ...]\n" << error << "\n";
    return 1;
  }

  ccsim::EngineConfig base;
  base.workload.mpl = 25;  // A sensible default; override with mpl=N.
  base.workload.ApplyConfig(config);
  base.resources = ccsim::ResourceConfig::Finite(
      static_cast<int>(config.GetIntOr("num_cpus", 1)),
      static_cast<int>(config.GetIntOr("num_disks", 2)));
  base.seed = static_cast<uint64_t>(config.GetIntOr("seed", 42));

  ccsim::RunLengths lengths = ccsim::RunLengths::FromEnv(ccsim::RunLengths{});

  std::vector<ccsim::MetricsReport> reports;
  for (const std::string& algorithm : ccsim::PaperAlgorithms()) {
    ccsim::EngineConfig point = base;
    point.algorithm = algorithm;
    reports.push_back(ccsim::RunOnePoint(point, lengths));
    const ccsim::MetricsReport& r = reports.back();
    std::cout << "ran " << algorithm << ": " << r.commits << " commits in "
              << r.measured_seconds << " simulated seconds\n";
  }

  ccsim::PrintReportTable(std::cout, "quickstart: Table 2 workload", reports);
  return 0;
}
